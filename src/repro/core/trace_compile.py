"""Trace compilation v2: guarded episode closures over hot paths.

PR 5's routine compiler (:mod:`repro.core.compile`) stops at basic-block
boundaries, so a miss episode still re-enters the controller's dispatch
loop at every branch and every boundary action. This module records the
*dynamic* path a hot routine actually takes — the sequence of outcomes
of its non-fusible actions — and stitches the already-compiled blocks
along that path into one guarded closure per routine invocation. An
episode (miss → AGEN → DRAM yield → resume → retire) then runs as a
chain of these closures, linked by the triggering event
(:attr:`BoundTrace.next_on`), instead of one closure per block.

Every inlined branch becomes a **guard**: the recorded direction is
assumed, the predicate is evaluated inline, and a mismatch *deopts* —
the trace detaches and the block/interpreter path resumes at the exact
pc the interpreter would be at, with byte-identical registers, stats,
costs, and occupancy integrals. Deoptimization is therefore always
safe; the trace is purely a dispatch-overhead optimization.

Execution contract (mirrors ``Controller._back_end_execute`` exactly —
the differential tests pin this):

* a **block** segment runs only when the whole block fits the cycle's
  remaining ``#Exe`` budget; otherwise the trace *detaches* and the
  interpreter splits the block, exactly like block mode does;
* **inline** / **guard** / **exec** segments run whenever ``budget > 0``
  (single actions may overshoot the budget, exactly like the
  interpreter); at ``budget <= 0`` the trace saves its cursor
  (``ex.trace_pos``) and the next cycle re-enters through a
  straight-line closure compiled for that cursor (lazily, memoized per
  cursor; past :data:`TRACE_ENTRY_CAP` cursors a shared position-ladder
  closure serves the tail), so neither fresh entry nor resume pays a
  per-segment position test;
* ``compile_mode=verify`` swaps the generated closure for a lockstep
  runner that drives :func:`repro.core.compile.verify_block` per
  block/inline segment and cross-checks every guard prediction against
  the authoritative interpreter outcome.

The recorded :class:`TracePath` is installed in the
:class:`~repro.core.microcode.MicrocodeRAM` (paths are a property of the
program); each controller binds its own :class:`BoundTrace` against its
stat counters and geometry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple, TYPE_CHECKING

from .actions import ActionError
from .compile import (
    BoundBlock,
    CompileVerifyError,
    _BlockEmitter,
    _codegen,
    _count_stats,
    _operand_expr,
    is_fusible,
    verify_block,
)
from .isa import (
    OPCODE_CATEGORY,
    OPCODE_SOURCE_SLOTS,
    Action,
    Opcode,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .controller import Controller, _RoutineExec
    from .microcode import Routine

__all__ = [
    "TracePath",
    "TraceBuildError",
    "TraceSegment",
    "BoundTrace",
    "bind_trace",
    "iter_trace_steps",
    "record_mask",
    "guardable",
    "TRACE_MAX_DECISIONS",
    "TRACE_MAX_SEGMENTS",
]

# A recording longer than this aborts and blacklists the routine: the
# path is too irregular (e.g. a data-dependent loop) for one episode
# closure to be worth the codegen.
TRACE_MAX_DECISIONS = 512
# Reconstruction cap: decisions interleave with straight-line runs, so
# the segment count is bounded but can exceed the decision count.
TRACE_MAX_SEGMENTS = 2048
# Budget-boundary resumes re-enter a trace at a segment cursor. Each
# distinct cursor gets its own straight-line closure (no per-segment
# position test on the hot path); beyond this many distinct cursors the
# trace falls back to one shared position-ladder closure rather than
# compiling an O(segments) tail per cursor.
TRACE_ENTRY_CAP = 32

# Pure branches: outcome is a total function of X-registers / message
# fields the closure already has in locals, so the branch can become an
# inline guard. BMISS/BHIT probe the meta-tag array (and must bump its
# counters), so they stay boundary actions executed via the interpreter.
_GUARD_EXPR: Dict[Opcode, str] = {
    Opcode.BEQ: "({a}) == ({b})",
    Opcode.BNZ: "({a}) != 0",
    Opcode.BLT: "({a}) < ({b})",
    Opcode.BGE: "({a}) >= ({b})",
    Opcode.BLE: "({a}) <= ({b})",
}


class TraceBuildError(ValueError):
    """A recorded path cannot be stitched into a trace."""


class TraceStats:
    """Trace-machinery bookkeeping, deliberately *outside* the
    controller's :class:`~repro.sim.stats.StatGroup`: architectural
    stats must stay byte-identical across compile modes, and whether a
    trace happened to run is tooling metadata, not machine behavior."""

    __slots__ = ("installs", "dispatches", "deopts", "detaches",
                 "episode_hits")

    def __init__(self) -> None:
        self.installs = 0       # paths recorded and bound
        self.dispatches = 0     # routine invocations entered via a trace
        self.deopts = 0         # guard/exec outcome mismatches
        self.detaches = 0       # mid-cycle partial-budget block splits
        self.episode_hits = 0   # dispatches resolved via a next_on edge

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"TraceStats({body})"


@dataclass(frozen=True)
class TracePath:
    """The recorded hot path of one routine (controller-independent).

    ``decisions`` holds one ``(pc, next_pc, taken, terminated)`` tuple
    per *non-fusible* action executed along the path, in execution
    order. Fusible stretches between decisions are fully determined by
    the routine text, so they are reconstructed, not recorded.
    """

    routine_name: str
    decisions: Tuple[Tuple[int, int, bool, bool], ...]


def record_mask(routine: "Routine") -> Tuple[bool, ...]:
    """``mask[pc]`` is True when the action at ``pc`` is fusible (and
    therefore *not* recorded while learning a path)."""
    return tuple(is_fusible(a) for a in routine.actions)


def guardable(action: Action) -> bool:
    """True when ``action`` is a pure branch an episode trace can turn
    into an inline guard."""
    if action.op not in _GUARD_EXPR or action.target is None:
        return False
    for slot in OPCODE_SOURCE_SLOTS[action.op]:
        if getattr(action, slot) is None:
            return False
    return True


def _guard_reg_limit(action: Action) -> int:
    """Highest register index the guard predicate would read (-1: none)."""
    highest = -1
    for slot in OPCODE_SOURCE_SLOTS[action.op]:
        operand = getattr(action, slot)
        if operand is not None and operand.kind == "r":
            highest = max(highest, int(operand.value))
    return highest


def iter_trace_steps(routine: "Routine", path: TracePath,
                     block_lookup: Callable[[int], Optional[Tuple[int, int]]],
                     ) -> Iterator[Tuple]:
    """Replay ``path`` over the routine text, yielding trace steps.

    ``block_lookup(pc)`` returns the ``(start, end)`` span of the fused
    block *starting* at ``pc`` (or None) — callers pass either a bound
    block table (binding) or the unbound compiled partition (lint /
    disasm). Steps:

    * ``("block", start, end)`` — a fused block runs whole;
    * ``("inline", pc)`` — a single fusible action outside any block;
    * ``("guard", pc, taken, target)`` — a pure branch, recorded
      direction assumed;
    * ``("exec", pc, next_pc, terminated)`` — a boundary action run via
      the interpreter, with the recorded outcome as its guard
      (``next_pc`` is -1 when the recording terminated here).

    Raises :class:`TraceBuildError` when the decisions do not replay
    cleanly (defensive: a recorder bug, or a stale path for a changed
    routine) or the step count exceeds :data:`TRACE_MAX_SEGMENTS`.
    """
    actions = routine.actions
    n = len(actions)
    decisions = path.decisions
    di = 0
    pc = 0
    steps = 0
    while pc < n:
        steps += 1
        if steps > TRACE_MAX_SEGMENTS:
            raise TraceBuildError(
                f"trace for {routine.name!r} exceeds {TRACE_MAX_SEGMENTS} "
                "segments")
        span = block_lookup(pc)
        if span is not None:
            start, end = span
            if start != pc or not end > start:
                raise TraceBuildError(
                    f"block lookup for {routine.name!r} returned "
                    f"[{start},{end}) at pc {pc}")
            yield ("block", start, end)
            pc = end
            continue
        action = actions[pc]
        if is_fusible(action):
            yield ("inline", pc)
            pc += 1
            continue
        if di >= len(decisions):
            raise TraceBuildError(
                f"recorded path for {routine.name!r} ends at pc {pc} "
                "before the routine completes")
        dpc, next_pc, taken, terminated = decisions[di]
        di += 1
        if dpc != pc:
            raise TraceBuildError(
                f"recorded decision at pc {dpc} but replay of "
                f"{routine.name!r} reached pc {pc}")
        if guardable(action) and not terminated:
            yield ("guard", pc, taken, action.target)
            pc = action.target if taken else pc + 1
            continue
        yield ("exec", pc, -1 if terminated else next_pc, terminated)
        if terminated:
            break
        pc = next_pc
    if di != len(decisions):
        raise TraceBuildError(
            f"recorded path for {routine.name!r} has {len(decisions) - di} "
            "unconsumed decisions")


class TraceSegment:
    """One step of a bound trace (see :func:`iter_trace_steps`)."""

    __slots__ = ("kind", "pc", "block", "vblock", "action", "taken",
                 "target", "next_pc", "expr", "predicate")

    def __init__(self, kind: str, pc: int) -> None:
        self.kind = kind
        self.pc = pc
        self.block: Optional[BoundBlock] = None    # "block"
        self.vblock: Optional[BoundBlock] = None   # "inline" (verify shadow)
        self.action: Optional[Action] = None       # "guard" / "exec"
        self.taken = False                         # "guard"
        self.target = -1                           # "guard"
        self.next_pc = -1                          # "exec" (-1: terminated)
        self.expr = ""                             # "guard" (codegen/disasm)
        self.predicate: Optional[Callable] = None  # "guard" (verify)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TraceSegment {self.kind} @{self.pc}>"


class BoundTrace:
    """A :class:`TracePath` bound to one controller.

    ``run(controller, ex, budget)`` executes as much of the trace as the
    cycle budget allows and returns the remaining budget; it either
    completes the routine (``ex.pc`` past the end or
    ``ex.trace_terminated``), saves a resume cursor (``ex.trace_pos``),
    or deopts (``ex.trace = None`` with ``ex.pc`` at the divergence).
    ``next_on`` chains episode closures: the trace that handled the
    event a completed trace's routine yielded into.
    """

    __slots__ = ("routine_name", "path", "segments", "source", "run",
                 "next_on", "n_actions", "_cat_index")

    def __init__(self, routine_name: str, path: TracePath,
                 segments: Tuple[TraceSegment, ...], n_actions: int) -> None:
        self.routine_name = routine_name
        self.path = path
        self.segments = segments
        self.n_actions = n_actions
        self.source = ""
        self.run: Callable = None  # type: ignore[assignment]
        self.next_on: Dict[str, "BoundTrace"] = {}
        self._cat_index: Dict[Opcode, int] = {}

    @property
    def guards(self) -> int:
        return sum(1 for s in self.segments if s.kind == "guard")

    # ------------------------------------------------------------------
    # verify flavor: lockstep differential, interpreter authoritative
    # ------------------------------------------------------------------
    def _verify_run(self, ctrl: "Controller", ex: "_RoutineExec",
                    budget: int) -> int:
        walker = ex.walker
        msg = ex.msg
        ctx = walker.ctx
        execute = ctrl.executor.execute
        charge = ctrl.xregs.charge_active
        cat_index = self._cat_index
        costs = ex.costs
        segments = self.segments
        pos = ex.trace_pos
        n = len(segments)
        while pos < n:
            seg = segments[pos]
            kind = seg.kind
            if budget <= 0:
                # cycle budget exhausted at a segment boundary: save the
                # cursor and resume inside this trace next cycle
                ex.trace_pos = pos
                ex.pc = seg.pc
                return budget
            if kind == "block":
                bound = seg.block
                if budget < bound.n:
                    # mid-cycle partial budget: block mode would split
                    # the block through the interpreter, so detach
                    ex.pc = bound.start
                    ex.trace = None
                    ctrl.trace_stats.detaches += 1
                    return budget
                verify_block(ctrl, ex, bound, cat_index)
                budget -= bound.n
                pos += 1
                continue
            if kind == "inline":
                verify_block(ctrl, ex, seg.vblock, cat_index)
                budget -= 1
                pos += 1
                continue
            action = seg.action
            if kind == "guard":
                predicted = bool(seg.predicate(ctx.regs, msg))
                result = execute(walker, action, msg)
                budget -= result.cost
                charge(ctx, result.cost)
                if costs is not None:
                    costs[cat_index[action.op]] += result.cost
                actual = result.branch is not None
                if actual != predicted:
                    raise CompileVerifyError(
                        f"{self.routine_name}[{seg.pc}] guard "
                        f"({seg.expr}) predicted taken={predicted} but "
                        f"the interpreter took {actual}")
                if actual != seg.taken:
                    ex.pc = result.branch if actual else seg.pc + 1
                    ex.trace = None
                    ctrl.trace_stats.deopts += 1
                    return budget
                pos += 1
                continue
            # "exec": interpreter-run boundary action, recorded outcome
            # as the guard
            result = execute(walker, action, msg)
            budget -= result.cost
            charge(ctx, result.cost)
            if costs is not None:
                costs[cat_index[action.op]] += result.cost
            if result.terminated:
                ex.trace_terminated = True
                return budget
            nxt = result.branch if result.branch is not None else seg.pc + 1
            if nxt != seg.next_pc:
                ex.pc = nxt
                ex.trace = None
                ctrl.trace_stats.deopts += 1
                return budget
            pos += 1
        ex.pc = self.n_actions
        return budget


# ----------------------------------------------------------------------
# binding + code generation
# ----------------------------------------------------------------------

def _exec_segment(pc: int, action: Action, next_pc: int) -> TraceSegment:
    seg = TraceSegment("exec", pc)
    seg.action = action
    seg.next_pc = next_pc
    return seg


def bind_trace(controller: "Controller", routine: "Routine",
               path: TracePath,
               block_at: Optional[Tuple[Optional[BoundBlock], ...]],
               cat_index: Dict[Opcode, int]) -> BoundTrace:
    """Stitch ``path`` into a guarded closure bound to ``controller``.

    Raises :class:`TraceBuildError` when the path does not replay; the
    caller blacklists the routine.
    """
    actions = routine.actions
    xregs_limit = controller.config.xregs_per_walker

    def lookup(pc: int) -> Optional[Tuple[int, int]]:
        if block_at is None:
            return None
        bound = block_at[pc]
        return None if bound is None else (bound.start, bound.end)

    segments: List[TraceSegment] = []
    for step in iter_trace_steps(routine, path, lookup):
        kind = step[0]
        if kind == "block":
            seg = TraceSegment("block", step[1])
            seg.block = block_at[step[1]]
            segments.append(seg)
            continue
        if kind == "inline":
            pc = step[1]
            compiled = _codegen(routine, pc, pc + 1)
            if compiled.max_reg >= xregs_limit:
                # the interpreter owns the out-of-range IndexError
                segments.append(_exec_segment(pc, actions[pc], pc + 1))
                continue
            seg = TraceSegment("inline", pc)
            seg.vblock = BoundBlock(compiled, controller.stats, cat_index)
            segments.append(seg)
            continue
        if kind == "guard":
            pc, taken, target = step[1], step[2], step[3]
            action = actions[pc]
            if _guard_reg_limit(action) >= xregs_limit:
                segments.append(_exec_segment(
                    pc, action, target if taken else pc + 1))
                continue
            seg = TraceSegment("guard", pc)
            seg.action = action
            seg.taken = taken
            seg.target = target
            operands = {
                slot: _operand_expr(getattr(action, slot))
                for slot in OPCODE_SOURCE_SLOTS[action.op]
            }
            seg.expr = _GUARD_EXPR[action.op].format(
                a=operands.get("a"), b=operands.get("b"))
            seg.predicate = eval(  # noqa: S307 - expr built from operands
                compile(f"lambda _regs, msg: ({seg.expr})",
                        f"<xtrace {routine.name} guard@{pc}>", "eval"))
            segments.append(seg)
            continue
        pc, next_pc = step[1], step[2]
        segments.append(_exec_segment(pc, actions[pc], next_pc))

    trace = BoundTrace(routine.name, path, tuple(segments), len(actions))
    trace._cat_index = cat_index
    if controller.config.compile_mode == "verify":
        trace.run = trace._verify_run
    else:
        trace.run = _codegen_entry(controller, routine, trace, cat_index)
    return trace


def _codegen_entry(controller: "Controller", routine: "Routine",
                   trace: BoundTrace,
                   cat_index: Dict[Opcode, int]) -> Callable:
    """Build the fresh-entry closure plus a lazy resume dispatcher.

    The fresh-entry closure is straight-line (segment 0 onward, no
    position tests); when a budget boundary saved a cursor, the next
    cycle re-enters through ``_resume``, which compiles a straight-line
    closure for that cursor on first use. Budgets are fixed per cycle,
    so a trace sees only a handful of distinct cursors; past
    :data:`TRACE_ENTRY_CAP` a shared position-ladder closure (the
    pre-v2 shape) serves the long tail instead of compiling more code.
    """
    entries: Dict[int, Callable] = {}
    fallback: List[Optional[Callable]] = [None]

    def _resume(ctrl: "Controller", ex: "_RoutineExec", budget: int) -> int:
        pos = ex.trace_pos
        fn = entries.get(pos)
        if fn is None:
            if len(entries) < TRACE_ENTRY_CAP:
                fn = _codegen_trace(controller, routine, trace, cat_index,
                                    start=pos)
                entries[pos] = fn
            else:
                fn = fallback[0]
                if fn is None:
                    fn = _codegen_trace(controller, routine, trace,
                                        cat_index, ladder=True)
                    fallback[0] = fn
        return fn(ctrl, ex, budget)

    entry = _codegen_trace(controller, routine, trace, cat_index,
                           resume=_resume)
    entries[0] = entry
    return entry


def _codegen_trace(controller: "Controller", routine: "Routine",
                   trace: BoundTrace, cat_index: Dict[Opcode, int],
                   start: int = 0, ladder: bool = False,
                   resume: Optional[Callable] = None) -> Callable:
    """Emit one fast-flavor closure for the trace.

    Default shape is straight-line from segment ``start`` — segments
    execute unconditionally in order (within one call control only
    falls through forward; every early exit is a ``return``), so the
    hot path carries no per-segment position test. ``ladder=True``
    instead emits the any-cursor shape (every segment wrapped in an
    ``if _pos <= k`` test) used as the shared fallback once a trace has
    accumulated :data:`TRACE_ENTRY_CAP` distinct resume cursors.
    ``resume`` (fresh-entry closure only) is the dispatcher invoked when
    the closure is entered with a saved cursor.
    """
    stats = controller.stats
    count_stats = controller._count_stats
    index_of = {OPCODE_CATEGORY[op].value: idx
                for op, idx in cat_index.items()}
    namespace: Dict[str, object] = {
        "ActionError": ActionError,
        "_execute": controller.executor.execute,
        "_charge": controller.xregs.charge_active,
        "_charge_units": controller.xregs.charge_units,
        "dataram": controller.dataram,
        "_TS": controller.trace_stats,
    }
    counter_vars: Dict[str, str] = {}

    def cvar(name: str) -> str:
        var = counter_vars.get(name)
        if var is None:
            var = f"_S{len(counter_vars)}"
            counter_vars[name] = var
            namespace[var] = stats.counter(name)
        return var

    lines: List[str] = [f"def _trace(ctrl, ex, budget):"]
    emit = lines.append
    if resume is not None:
        namespace["_resume"] = resume
        emit("    if ex.trace_pos:")
        emit("        return _resume(ctrl, ex, budget)")
    emit("    walker = ex.walker")
    emit("    msg = ex.msg")
    emit("    _ctx = walker.ctx")
    emit("    _regs = _ctx.regs")
    emit("    _rt = _ctx.regs_touched")
    emit("    _occ = 0")
    emit("    _costs = ex.costs")
    if ladder:
        emit("    _pos = ex.trace_pos")

    def emit_epilogue(indent: str) -> None:
        emit(f"{indent}_ctx.regs_touched = _rt")
        emit(f"{indent}if _occ:")
        emit(f"{indent}    _charge_units(_occ)")
        emit(f"{indent}return budget")

    def emit_save(k: int, pc: int, indent: str) -> None:
        emit(f"{indent}ex.trace_pos = {k}")
        emit(f"{indent}ex.pc = {pc}")
        emit_epilogue(indent)

    def emit_deopt(pc_expr: str, indent: str) -> None:
        emit(f"{indent}ex.pc = {pc_expr}")
        emit(f"{indent}ex.trace = None")
        emit(f"{indent}_TS.deopts += 1")
        emit_epilogue(indent)

    def emit_bumps(counts, indent: str) -> None:
        if not count_stats:
            return
        for name, amount in counts:
            emit(f"{indent}{cvar(name)}.value += {amount}")

    def emit_costs(cat_costs, indent: str) -> None:
        emit(f"{indent}if _costs is not None:")
        for cat, amount in cat_costs:
            emit(f"{indent}    _costs[{index_of[cat]}] += {amount}")

    base = "        " if ladder else "    "
    deep = base + "    "
    for k, seg in enumerate(trace.segments):
        if k < start:
            continue
        emit(f"    # -- segment {k}: {seg.kind} @{seg.pc}")
        if ladder:
            emit(f"    if _pos <= {k}:")
        if seg.kind == "block":
            bound = seg.block
            emit(f"{base}if budget <= 0:")
            emit_save(k, bound.start, deep)
            emit(f"{base}if budget < {bound.n}:")
            emit(f"{deep}ex.pc = {bound.start}")
            emit(f"{deep}ex.trace = None")
            emit(f"{deep}_TS.detaches += 1")
            emit_epilogue(deep)
            emitter = _BlockEmitter()
            for pc in range(bound.start, bound.end):
                emitter.emit(pc, routine.actions[pc])
            for line in emitter.lines:
                emit(base + line)
            emit(f"{base}budget -= {bound.n}")
            emit_bumps(bound.block.counter_counts, base)
            emit_costs(bound.block.cat_costs, base)
        elif seg.kind == "inline":
            emit(f"{base}if budget <= 0:")
            emit_save(k, seg.pc, deep)
            emitter = _BlockEmitter()
            emitter.emit(seg.pc, routine.actions[seg.pc])
            for line in emitter.lines:
                emit(base + line)
            emit(f"{base}budget -= 1")
            counts, cats = _count_stats(routine.actions, seg.pc, seg.pc + 1)
            emit_bumps(counts, base)
            emit_costs(cats, base)
        elif seg.kind == "guard":
            action = seg.action
            emit(f"{base}if budget <= 0:")
            emit_save(k, seg.pc, deep)
            emit(f"{base}budget -= 1")
            emit(f"{base}_occ += _rt")
            reads = sum(
                1 for slot in OPCODE_SOURCE_SLOTS[action.op]
                if getattr(action, slot) is not None
                and getattr(action, slot).kind == "r")
            cat = OPCODE_CATEGORY[action.op].value
            counts = {"actions_total": 1, "ucode_reads": 1,
                      f"act_{cat}": 1, "branches": 1}
            if reads:
                counts["xreg_reads"] = reads
            emit_bumps(sorted(counts.items()), base)
            emit_costs(((cat, 1),), base)
            if seg.taken:
                if count_stats:
                    emit(f"{base}if {seg.expr}:")
                    emit(f"{deep}{cvar('branches_taken')}.value += 1")
                    emit(f"{base}else:")
                    emit_deopt(str(seg.pc + 1), deep)
                else:
                    emit(f"{base}if not ({seg.expr}):")
                    emit_deopt(str(seg.pc + 1), deep)
            else:
                emit(f"{base}if {seg.expr}:")
                if count_stats:
                    emit(f"{deep}{cvar('branches_taken')}.value += 1")
                emit_deopt(str(seg.target), deep)
        else:  # "exec"
            action_var = f"_A{k}"
            namespace[action_var] = seg.action
            cat = OPCODE_CATEGORY[seg.action.op].value
            emit(f"{base}if budget <= 0:")
            emit_save(k, seg.pc, deep)
            emit(f"{base}_ctx.regs_touched = _rt")
            emit(f"{base}_res = _execute(walker, {action_var}, msg)")
            emit(f"{base}_rt = _ctx.regs_touched")
            emit(f"{base}_c = _res.cost")
            emit(f"{base}budget -= _c")
            emit(f"{base}_charge(_ctx, _c)")
            emit(f"{base}if _costs is not None:")
            emit(f"{deep}_costs[{index_of[cat]}] += _c")
            emit(f"{base}if _res.terminated:")
            emit(f"{deep}ex.trace_terminated = True")
            emit_epilogue(deep)
            emit(f"{base}_n = _res.branch")
            emit(f"{base}if _n is None:")
            emit(f"{deep}_n = {seg.pc + 1}")
            emit(f"{base}if _n != {seg.next_pc}:")
            emit_deopt("_n", deep)
    emit(f"    ex.pc = {trace.n_actions}")
    emit("    _ctx.regs_touched = _rt")
    emit("    if _occ:")
    emit("        _charge_units(_occ)")
    emit("    return budget")

    source = "\n".join(lines) + "\n"
    if start == 0 and not ladder:
        trace.source = source
    tag = ("ladder" if ladder else f"start={start}")
    code = compile(source, f"<xtrace {routine.name} {tag}>", "exec")
    exec(code, namespace)
    return namespace["_trace"]  # type: ignore[return-value]
