"""Messages exchanged over the X-Cache's latency-insensitive queues.

Everything that enters or leaves the controller is a :class:`Message`:
meta loads/stores from the DSA datapath (MetaIO), DRAM fill responses,
internally raised walker events, and responses back to the datapath.
The front-end's *trigger table* maps an arriving message to a protocol
event name; the `[state, event]` pair then indexes the routine table.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = [
    "Message",
    "reset_ids",
    "EV_META_LOAD",
    "EV_META_STORE",
    "EV_FILL",
    "DEFAULT_STATE",
    "VALID_STATE",
]

# Canonical protocol event names. Walker specs may add their own
# (internal) events — e.g. Widx raises "Hashed" when its hash unit
# completes.
EV_META_LOAD = "MetaLoad"
EV_META_STORE = "MetaStore"
EV_FILL = "Fill"

# Canonical meta-tag states. DEFAULT is "no entry / walk not started"
# (the paper: "The default is the starting state for misses"); VALID
# marks a completed refill servable by the hit port.
DEFAULT_STATE = "Default"
VALID_STATE = "Valid"

_ids = itertools.count(1)


def reset_ids() -> None:
    """Restart message uid numbering from 1.

    uids double as the observability plane's request/walk correlation
    ids, and they surface in user-facing output (``--explain-top``
    drilldowns, span summaries, traces). The harness resets the counter
    at the start of every experiment so numbering depends only on the
    experiment itself — a serial multi-experiment run and a
    ``--parallel`` run (one experiment per worker process) print
    byte-identical reports. Systems never exchange messages across
    experiments, so restarting cannot alias live traffic.
    """
    global _ids
    _ids = itertools.count(1)


@dataclass
class Message:
    """A unit of traffic on an X-Cache queue.

    ``tag``    — the meta-tag tuple this message concerns (may be None
                 for broadcast/control traffic).
    ``fields`` — named integer payload (addresses, keys, counters).
    ``data``   — raw block payload (DRAM fills, datapath stores).
    """

    event: str
    tag: Optional[Tuple[int, ...]] = None
    fields: Dict[str, int] = field(default_factory=dict)
    data: bytes = b""
    issued_at: int = 0
    uid: int = field(default_factory=lambda: next(_ids))

    def get(self, name: str) -> int:
        """Read a named field (KeyError lists what exists, for debugging)."""
        try:
            return self.fields[name]
        except KeyError:
            raise KeyError(
                f"message {self.event!r} has no field {name!r}; "
                f"fields={sorted(self.fields)}"
            ) from None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Message({self.event}, tag={self.tag}, "
                f"fields={self.fields}, data={len(self.data)}B)")
