"""The X-Action microcode ISA.

Figure 8 of the paper lists five categories of 1-cycle atomic actions,
each steering one hardware module:

=========  ==========================================================
AGEN       add, and, or, xor, addi, inc, dec, shl, shr, sra, srl, not,
           allocR
Queues     enq, deq, read-data, write-data, peek
Meta-tags  allocM, deallocM, update, state
Control    bmiss, bhit, beq, bnz, blt, bge, ble
DataRAM    allocD, deallocD, read, write
=========  ==========================================================

Operands can be explicit (immediates), implicit (the DRAM queue), or
DSA-specific (message fields). This module defines the opcode space and
the operand encoding; :mod:`repro.core.actions` gives them semantics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

__all__ = [
    "ActionCategory",
    "Opcode",
    "Operand",
    "R",
    "IMM",
    "MSG",
    "Action",
    "OPCODE_CATEGORY",
    "OPCODE_SOURCE_SLOTS",
    "OPCODE_WRITES_DST",
    "FUSIBLE_OPCODES",
]


class ActionCategory(enum.Enum):
    """Which hardware module an action drives (energy/area accounting)."""

    AGEN = "agen"
    QUEUE = "queue"
    META = "meta"
    CONTROL = "control"
    DATA = "data"


class Opcode(enum.Enum):
    # AGEN (address generation / ALU)
    ADD = "add"
    AND = "and"
    OR = "or"
    XOR = "xor"
    ADDI = "addi"
    INC = "inc"
    DEC = "dec"
    SHL = "shl"
    SHR = "shr"
    SRA = "sra"
    SRL = "srl"
    NOT = "not"
    ALLOCR = "allocR"
    # message queues
    ENQ = "enq"
    DEQ = "deq"
    READ_DATA = "read-data"
    WRITE_DATA = "write-data"
    PEEK = "peek"
    # meta-tags
    ALLOCM = "allocM"
    DEALLOCM = "deallocM"
    UPDATE = "update"
    STATE = "state"
    # control flow
    BMISS = "bmiss"
    BHIT = "bhit"
    BEQ = "beq"
    BNZ = "bnz"
    BLT = "blt"
    BGE = "bge"
    BLE = "ble"
    # data RAM
    ALLOCD = "allocD"
    DEALLOCD = "deallocD"
    READ = "read"
    WRITE = "write"


OPCODE_CATEGORY: Dict[Opcode, ActionCategory] = {
    Opcode.ADD: ActionCategory.AGEN,
    Opcode.AND: ActionCategory.AGEN,
    Opcode.OR: ActionCategory.AGEN,
    Opcode.XOR: ActionCategory.AGEN,
    Opcode.ADDI: ActionCategory.AGEN,
    Opcode.INC: ActionCategory.AGEN,
    Opcode.DEC: ActionCategory.AGEN,
    Opcode.SHL: ActionCategory.AGEN,
    Opcode.SHR: ActionCategory.AGEN,
    Opcode.SRA: ActionCategory.AGEN,
    Opcode.SRL: ActionCategory.AGEN,
    Opcode.NOT: ActionCategory.AGEN,
    Opcode.ALLOCR: ActionCategory.AGEN,
    Opcode.ENQ: ActionCategory.QUEUE,
    Opcode.DEQ: ActionCategory.QUEUE,
    Opcode.READ_DATA: ActionCategory.QUEUE,
    Opcode.WRITE_DATA: ActionCategory.QUEUE,
    Opcode.PEEK: ActionCategory.QUEUE,
    Opcode.ALLOCM: ActionCategory.META,
    Opcode.DEALLOCM: ActionCategory.META,
    Opcode.UPDATE: ActionCategory.META,
    Opcode.STATE: ActionCategory.META,
    Opcode.BMISS: ActionCategory.CONTROL,
    Opcode.BHIT: ActionCategory.CONTROL,
    Opcode.BEQ: ActionCategory.CONTROL,
    Opcode.BNZ: ActionCategory.CONTROL,
    Opcode.BLT: ActionCategory.CONTROL,
    Opcode.BGE: ActionCategory.CONTROL,
    Opcode.BLE: ActionCategory.CONTROL,
    Opcode.ALLOCD: ActionCategory.DATA,
    Opcode.DEALLOCD: ActionCategory.DATA,
    Opcode.READ: ActionCategory.DATA,
    Opcode.WRITE: ActionCategory.DATA,
}

# declaration order matches repro.obs.events.ACTION_CATEGORIES, the
# canonical index space for per-category cost tuples
_CATEGORY_ORDER: Dict[ActionCategory, int] = {
    cat: i for i, cat in enumerate(ActionCategory)
}


# Which of an action's operand slots the executor statically resolves,
# per opcode. This is the routine compiler's (and the linter's
# cross-check's) model of operand traffic; opcodes whose operand use is
# attribute- or queue-dependent (ENQ, WRITE) are deliberately absent.
OPCODE_SOURCE_SLOTS: Dict[Opcode, Tuple[str, ...]] = {
    Opcode.ADD: ("a", "b"),
    Opcode.AND: ("a", "b"),
    Opcode.OR: ("a", "b"),
    Opcode.XOR: ("a", "b"),
    Opcode.ADDI: ("a", "b"),
    Opcode.INC: ("a",),
    Opcode.DEC: ("a",),
    Opcode.SHL: ("a", "b"),
    Opcode.SHR: ("a", "b"),
    Opcode.SRA: ("a", "b"),
    Opcode.SRL: ("a", "b"),
    Opcode.NOT: ("a",),
    Opcode.ALLOCR: (),
    Opcode.DEQ: (),
    Opcode.READ_DATA: ("a",),
    Opcode.WRITE_DATA: ("a", "b"),
    Opcode.PEEK: ("a",),
    Opcode.UPDATE: ("a",),
    Opcode.STATE: (),
    Opcode.BMISS: ("a",),
    Opcode.BHIT: ("a",),
    Opcode.BEQ: ("a", "b"),
    Opcode.BNZ: ("a",),
    Opcode.BLT: ("a", "b"),
    Opcode.BGE: ("a", "b"),
    Opcode.BLE: ("a", "b"),
    Opcode.ALLOCD: ("a",),
    Opcode.DEALLOCD: ("a", "b"),
    Opcode.READ: ("a",),
}

# Opcodes that write their result through the X-register file (dst).
OPCODE_WRITES_DST = frozenset({
    Opcode.ADD, Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.ADDI,
    Opcode.INC, Opcode.DEC, Opcode.SHL, Opcode.SHR, Opcode.SRA,
    Opcode.SRL, Opcode.NOT, Opcode.PEEK, Opcode.READ_DATA, Opcode.READ,
    Opcode.ALLOCD,
})

# Opcodes eligible for fused-block execution (see repro.core.compile):
# fixed cost 1, no branch, no termination, no queue/allocator
# interaction. STATE is conditionally fusible (only done=False — the
# compiler checks the attribute); everything else here always is.
FUSIBLE_OPCODES = frozenset({
    Opcode.ADD, Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.ADDI,
    Opcode.INC, Opcode.DEC, Opcode.SHL, Opcode.SHR, Opcode.SRA,
    Opcode.SRL, Opcode.NOT, Opcode.ALLOCR, Opcode.DEQ, Opcode.PEEK,
    Opcode.READ_DATA, Opcode.READ, Opcode.WRITE_DATA, Opcode.UPDATE,
    Opcode.STATE,
})


@dataclass(frozen=True)
class Operand:
    """A typed microcode operand.

    ``kind`` is one of:

    * ``"r"``    — X-register index within the walker's context
    * ``"imm"``  — explicit immediate
    * ``"msg"``  — field of the message that triggered the routine
                   (a DSA-specific implicit operand)
    """

    kind: str
    value: Union[int, str]

    def __post_init__(self) -> None:
        if self.kind not in ("r", "imm", "msg"):
            raise ValueError(f"unknown operand kind {self.kind!r}")
        if self.kind == "r" and (not isinstance(self.value, int) or self.value < 0):
            raise ValueError(f"register operand needs a non-negative index")
        if self.kind == "msg" and not isinstance(self.value, str):
            raise ValueError("msg operand needs a field name")

    def __repr__(self) -> str:
        if self.kind == "r":
            return f"R{self.value}"
        if self.kind == "imm":
            return f"#{self.value}"
        return f"msg.{self.value}"


def R(index: int) -> Operand:
    """X-register operand."""
    return Operand("r", index)


def IMM(value: int) -> Operand:
    """Immediate operand."""
    return Operand("imm", value)


def MSG(name: str) -> Operand:
    """Triggering-message field operand."""
    return Operand("msg", name)


@dataclass(frozen=True)
class Action:
    """One microcode word.

    Fields are interpreted per-opcode (see :mod:`repro.core.actions`):

    * ``dst``      — destination register (AGEN results, PEEK, ALLOCD...)
    * ``a``, ``b`` — source operands
    * ``target``   — intra-routine branch target (action index)
    * ``queue``    — queue name for ENQ/DEQ (``"dram"``, ``"resp"``,
                     ``"self"``)
    * ``attrs``    — opcode-specific literal attributes (e.g. the event
                     name an internal ENQ raises, a message template).
    """

    op: Opcode
    dst: Optional[Operand] = None
    a: Optional[Operand] = None
    b: Optional[Operand] = None
    target: Optional[int] = None
    queue: Optional[str] = None
    attrs: Tuple[Tuple[str, object], ...] = ()
    # resolved once at construction: index into the canonical category
    # order (repro.obs.events.ACTION_CATEGORIES). The armed profiling
    # path charges ``costs[action.cat_index]`` per executed action, and
    # an enum-keyed dict lookup there costs a Python-level __hash__.
    cat_index: int = field(init=False, compare=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "cat_index",
                           _CATEGORY_ORDER[OPCODE_CATEGORY[self.op]])

    @property
    def category(self) -> ActionCategory:
        return OPCODE_CATEGORY[self.op]

    def attr(self, name: str, default: object = None) -> object:
        for key, value in self.attrs:
            if key == name:
                return value
        return default

    def with_target(self, target: int) -> "Action":
        return Action(self.op, self.dst, self.a, self.b, target,
                      self.queue, self.attrs)

    def __repr__(self) -> str:
        parts = [self.op.value]
        for label, val in (("dst", self.dst), ("a", self.a), ("b", self.b)):
            if val is not None:
                parts.append(f"{label}={val!r}")
        if self.target is not None:
            parts.append(f"->{self.target}")
        if self.queue is not None:
            parts.append(f"q={self.queue}")
        for key, value in self.attrs:
            parts.append(f"{key}={value!r}")
        return f"<{' '.join(parts)}>"


def make_action(op: Opcode, **kwargs) -> Action:
    """Keyword-friendly action constructor used by the walker DSL."""
    attrs = tuple(sorted(kwargs.pop("attrs", {}).items()))
    return Action(op, attrs=attrs, **kwargs)
