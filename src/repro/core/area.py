"""FPGA / ASIC synthesis model (Figures 19 and 20).

The paper synthesizes the generated controller (no RAMs) at #Exe=4,
#Active=8 on an Altera Cyclone IV GX (EP4CGX150DF31C8) and through
OpenROAD at 45 nm. This module provides an *analytical* area model
calibrated to those published results:

* FPGA @ reference config: 6985 logic elements (6 % of the part),
  5766 combinational functions (5 %), 3457 registers (2 %).
  Register breakdown: X-Reg 31 %, Others 24 %, Action-Exec 20 %,
  Act.Meta 15 %, Rtn.Table 10 % (X-Reg uses the most registers).
  Logic breakdown: Action-Exec 45 %, Others 20 %, X-Reg 20 %,
  Act.Meta 11 %, Rtn.Table 4 % (Action-Exec dominates logic).
* ASIC @45 nm: controller 0.11 mm² / 65 K cells; a 256 KB RAM costs
  0.8 mm².

Each component's cost scales with the configuration knob that drives it
(#Active for X-Reg/Act.Meta, #Exe for Action-Exec, routine-table entries
for Rtn.Table), so sweeping the generator parameters produces the same
qualitative trends as re-synthesizing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .config import XCacheConfig
from .microcode import MicrocodeRAM
from .walker import CompiledWalker

__all__ = ["FPGA_REFERENCE", "ASIC_REFERENCE", "SynthesisModel", "AreaReport"]

# Published reference numbers (#Exe=4, #Active=8, Widx-class walker).
FPGA_REFERENCE = {
    "part": "Altera Cyclone IV GX EP4CGX150DF31C8",
    "part_logic_elements": 149_760,
    "total_logic": 6_985,
    "total_combinational": 5_766,
    "total_registers": 3_457,
    "register_shares": {
        "xreg": 0.31, "others": 0.24, "action_exec": 0.20,
        "act_meta": 0.15, "rtn_table": 0.10,
    },
    "logic_shares": {
        "action_exec": 0.45, "others": 0.20, "xreg": 0.20,
        "act_meta": 0.11, "rtn_table": 0.04,
    },
}

ASIC_REFERENCE = {
    "node_nm": 45,
    "controller_mm2": 0.11,
    "controller_cells": 65_000,
    "ram_mm2_per_256kb": 0.8,
}

_REF_ACTIVE = 8
_REF_EXE = 4
_REF_RTN_ENTRIES = 24  # reference routine-table pointer slots


@dataclass
class AreaReport:
    """Synthesis estimate for one configuration."""

    registers: Dict[str, float]
    logic: Dict[str, float]
    total_registers: float
    total_logic: float
    fpga_utilization: float
    asic_mm2: float
    asic_cells: float
    ram_mm2: float

    def register_share(self, component: str) -> float:
        return self.registers[component] / self.total_registers

    def logic_share(self, component: str) -> float:
        return self.logic[component] / self.total_logic

    def dominant_register_component(self) -> str:
        return max(self.registers, key=lambda k: self.registers[k])

    def dominant_logic_component(self) -> str:
        return max(self.logic, key=lambda k: self.logic[k])


class SynthesisModel:
    """Scales the published reference breakdown with the config."""

    def __init__(self, fpga: Optional[dict] = None,
                 asic: Optional[dict] = None) -> None:
        self.fpga = fpga or FPGA_REFERENCE
        self.asic = asic or ASIC_REFERENCE

    def _scales(self, config: XCacheConfig,
                program: Optional[CompiledWalker]) -> Dict[str, float]:
        rtn_entries = (_REF_RTN_ENTRIES if program is None
                       else max(1, program.table.num_entries))
        return {
            "xreg": (config.num_active * config.xregs_per_walker)
                    / (_REF_ACTIVE * 8),
            "act_meta": config.num_active / _REF_ACTIVE,
            "action_exec": config.num_exe / _REF_EXE,
            "rtn_table": rtn_entries / _REF_RTN_ENTRIES,
            "others": 1.0,
        }

    def synthesize(self, config: XCacheConfig,
                   program: Optional[CompiledWalker] = None) -> AreaReport:
        """Estimate area for ``config`` (controller only, like Fig. 20)."""
        scales = self._scales(config, program)
        ref_regs = self.fpga["total_registers"]
        ref_logic = self.fpga["total_logic"]
        registers = {
            comp: share * ref_regs * scales[comp]
            for comp, share in self.fpga["register_shares"].items()
        }
        logic = {
            comp: share * ref_logic * scales[comp]
            for comp, share in self.fpga["logic_shares"].items()
        }
        total_regs = sum(registers.values())
        total_logic = sum(logic.values())
        logic_ratio = total_logic / ref_logic
        return AreaReport(
            registers=registers,
            logic=logic,
            total_registers=total_regs,
            total_logic=total_logic,
            fpga_utilization=total_logic / self.fpga["part_logic_elements"],
            asic_mm2=self.asic["controller_mm2"] * logic_ratio,
            asic_cells=self.asic["controller_cells"] * logic_ratio,
            ram_mm2=self.ram_mm2(config),
        )

    def ram_mm2(self, config: XCacheConfig) -> float:
        """Data + meta-tag RAM area (the paper: 256 KB → 0.8 mm²)."""
        total_bytes = config.data_bytes + config.meta_bytes
        return total_bytes / (256 * 1024) * self.asic["ram_mm2_per_256kb"]
