"""Energy/power model seeded with the paper's Table 4 constants.

Table 4 ("Power usage per bit [pJ], timing: 1 GHz"):

===========  =========
Register     8.9e-03
Add          2.1e-01
Mul          12.6
Bitwise op   1.8e-02
Shift        4.1e-01
===========  =========

Memory (pJ): tag 2.7 / byte; L1 cache 44.8 / 32 bytes.

Pricing rules (the calibration notes are in DESIGN.md §energy):

* SRAM arrays are priced **per access** at the 44.8 pJ/32 B reference,
  scaled by sqrt(capacity/32 KB) (CACTI's first-order wire-energy
  growth), clamped to [0.5, 2.5].
* Tag probes run in *serial mode* (the paper configures CACTI this way
  "to ensure fair comparison"): only the selected way's tag drives the
  comparators, so a probe toggles ~1/8 of the stored tag bytes.
* The routine ROM is a small low-voltage array: the same 1/8 activity
  factor applies to its 4-byte word fetches.
* The AGEN datapath is address-width (32 bit), X-registers are 64 bit.

Power is energy / runtime at 1 GHz (pJ per ns == mW).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, TYPE_CHECKING

from .microcode import ACTION_BYTES

if TYPE_CHECKING:  # pragma: no cover
    from ..mem.addrcache import AddressCache
    from .controller import Controller

__all__ = ["EnergyParams", "EnergyBreakdown", "EnergyModel"]


@dataclass(frozen=True)
class EnergyParams:
    """Per-event energies (pJ). Defaults are the paper's Table 4."""

    # per bit
    register_bit: float = 8.9e-03
    add_bit: float = 2.1e-01
    mul_bit: float = 12.6
    bitwise_bit: float = 1.8e-02
    shift_bit: float = 4.1e-01
    # memory
    tag_byte: float = 2.7
    l1_per_32b: float = 44.8
    # datapath widths / activity factors (calibration, see module doc)
    reg_bits: int = 64
    agen_bits: int = 32
    serial_tag_activity: float = 0.125
    reference_sram_bytes: int = 32 * 1024

    def sram_access_pj(self, capacity_bytes: int) -> float:
        """Energy of one 32-byte array access, scaled by capacity."""
        scale = math.sqrt(max(capacity_bytes, 1) / self.reference_sram_bytes)
        return self.l1_per_32b * min(2.5, max(0.1, scale))

    def tag_probe_pj(self, tag_bytes: int) -> float:
        return self.tag_byte * tag_bytes * self.serial_tag_activity

    def ucode_fetch_pj(self, ram_bytes: int = 512) -> float:
        """One 4-byte microcode word from the (tiny) routine RAM."""
        return self.sram_access_pj(ram_bytes) * (ACTION_BYTES / 32.0)


@dataclass
class EnergyBreakdown:
    """Energy by component (pJ) with convenience roll-ups."""

    components: Dict[str, float] = field(default_factory=dict)
    runtime_cycles: int = 0

    def add(self, name: str, pj: float) -> None:
        self.components[name] = self.components.get(name, 0.0) + pj

    @property
    def total_pj(self) -> float:
        return sum(self.components.values())

    def power_mw(self) -> float:
        """Average power in mW at 1 GHz (1 cycle = 1 ns)."""
        if self.runtime_cycles <= 0:
            return 0.0
        return self.total_pj / self.runtime_cycles  # pJ/ns == mW

    def share(self, name: str) -> float:
        total = self.total_pj
        return self.components.get(name, 0.0) / total if total else 0.0

    def group_share(self, *names: str) -> float:
        total = self.total_pj
        if not total:
            return 0.0
        return sum(self.components.get(n, 0.0) for n in names) / total

    def __repr__(self) -> str:  # pragma: no cover
        parts = ", ".join(f"{k}={v:.1f}" for k, v in sorted(self.components.items()))
        return f"EnergyBreakdown({parts}, total={self.total_pj:.1f}pJ)"


class EnergyModel:
    """Prices component event counts into an :class:`EnergyBreakdown`."""

    def __init__(self, params: EnergyParams = EnergyParams()) -> None:
        self.params = params

    # ------------------------------------------------------------------
    # X-Cache
    # ------------------------------------------------------------------
    def xcache_breakdown(self, controller: "Controller",
                         runtime_cycles: int) -> EnergyBreakdown:
        """Energy of one X-Cache instance over a finished run.

        Components (mirroring Figure 16's RAM/controller split):

        * ``data_ram``     — sectored data array accesses
        * ``meta_tags``    — associative probes and updates
        * ``routine_ram``  — microcode word fetches (the programmability
                             cost: "less than 4.2 %")
        * ``xregs``        — X-register file traffic
        * ``agen_alu``     — walking/address-generation arithmetic
        * ``controller_other`` — queue management, scheduling registers
        """
        p = self.params
        cfg = controller.config
        stats = controller.stats
        out = EnergyBreakdown(runtime_cycles=runtime_cycles)

        access_bytes = max(cfg.wlen * 8, cfg.sector_bytes)
        dr = controller.dataram.stats
        data_accesses = dr.get("read_accesses")
        data_accesses += -(-dr.get("bytes_written") // access_bytes)
        out.add("data_ram", data_accesses * p.sram_access_pj(cfg.data_bytes))

        # One probe per serviced message plus allocator traffic.
        probes = (stats.get("hits") + stats.get("store_hits")
                  + stats.get("misses") + stats.get("miss_merges")
                  + stats.get("nowalk_misses") + stats.get("takes"))
        probes += (controller.metatags.stats.get("allocations")
                   + controller.metatags.stats.get("deallocations"))
        out.add("meta_tags", probes * p.tag_probe_pj(cfg.tag_bytes))

        out.add("routine_ram",
                stats.get("ucode_reads")
                * p.ucode_fetch_pj(controller.program.ram.bytes))

        xreg_ops = stats.get("xreg_reads") + stats.get("xreg_writes")
        out.add("xregs", xreg_ops * p.reg_bits * p.register_bit)

        alu = (stats.get("alu_add") * p.add_bit
               + stats.get("alu_bitwise") * p.bitwise_bit
               + stats.get("alu_shift") * p.shift_bit) * p.agen_bits
        # The hash unit iterates an XOR/rotate network (rotations are
        # wiring): one bitwise stage per hash cycle.
        alu += stats.get("hash_cycles") * p.bitwise_bit * p.agen_bits
        out.add("agen_alu", alu)

        queue_ops = stats.get("act_queue") + stats.get("meta_loads") \
            + stats.get("meta_stores")
        sched_ops = stats.get("routines_dispatched") + stats.get("branches")
        out.add("controller_other",
                (queue_ops + sched_ops) * p.reg_bits * p.register_bit * 2)
        return out

    # ------------------------------------------------------------------
    # address-tagged comparator
    # ------------------------------------------------------------------
    def address_cache_breakdown(self, cache: "AddressCache",
                                runtime_cycles: int,
                                agen_ops: int = 0,
                                hash_ops: int = 0,
                                hash_cycles: int = 60) -> EnergyBreakdown:
        """Energy of the address-based cache + its (ideal) walker's AGEN.

        Every access moves a whole line through the array (the paper's
        "L1 Cache 44.8 pJ / 32 bytes" in serial mode — X-Cache's sectored
        data RAM instead moves only the bytes it needs) plus an
        address-tag probe; fills/writebacks pay another line. The
        walker's address arithmetic and hashing are priced even though
        its *time* is free.
        """
        p = self.params
        out = EnergyBreakdown(runtime_cycles=runtime_cycles)
        accesses = cache.stats.get("accesses")
        line = cache.config.block_bytes
        fills = cache.stats.get("fills") + cache.stats.get("writebacks")
        capacity = cache.config.capacity_bytes
        access_pj = p.sram_access_pj(capacity) * (line / 32.0)
        out.add("data_ram", (accesses + fills) * access_pj)
        out.add("addr_tags", (accesses + fills) * p.tag_probe_pj(6))
        out.add("agen_alu", agen_ops * p.add_bit * p.agen_bits
                + hash_ops * hash_cycles * p.bitwise_bit * p.agen_bits)
        return out
