"""Thread-based controller baseline for the occupancy study (Figure 7).

Prior DSAs (Ax-DAE, CoRAM, Widx) executed walkers as *blocking threads*:
each walker is pinned to a hardware pipeline and holds its full register
context — architectural registers plus pipeline latches — from admission
to completion, including every cycle spent stalled on DRAM. The paper
measures occupancy as::

    #active-registers × size_bytes × lifetime_cycles

and finds threads cost ~1000× more than coroutines, because coroutine
walkers only pin a handful of X-registers and release the pipeline at
every long-latency event.

:class:`ThreadController` executes abstract walks — sequences of compute
and DRAM steps — with that blocking discipline. The experiment harness
feeds the *same* walk set to an X-Cache controller and to this model and
compares the measured integrals.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Deque, List, Optional, Sequence, Tuple

from ..mem.dram import DRAMModel, MemRequest, MemResponse
from ..obs.events import (
    Miss,
    RequestArrive,
    WalkerDispatch,
    WalkerRetire,
    WalkerWake,
    WalkerYield,
)
from ..sim import Component, Simulator
from .compile import CompileVerifyError
from .config import COMPILE_MODES, default_compile_mode

__all__ = ["WalkStep", "ThreadController", "fuse_walk_steps"]

# distinct walk shapes memoized per controller before the fusion cache
# resets (walk shapes are few; this only bounds adversarial submitters)
_FUSE_CACHE_MAX = 1024


@dataclass(frozen=True)
class WalkStep:
    """One step of an abstract walk.

    ``kind`` is ``"compute"`` (busy ``cycles``) or ``"dram"`` (a block
    fetch at ``addr``; the thread blocks until the fill returns).
    """

    kind: str
    cycles: int = 0
    addr: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("compute", "dram"):
            raise ValueError(f"unknown step kind {self.kind!r}")


@dataclass
class _Walk:
    steps: Tuple[WalkStep, ...]
    submitted_at: int
    uid: int = 0
    started_at: int = -1
    step_index: int = 0
    # persistent per-walk callbacks (armed once at start, reused every
    # step — the steady state allocates nothing per compute/DRAM step)
    resume: Optional[Callable[[], None]] = None
    on_fill: Optional[Callable[[MemResponse], None]] = None


def fuse_walk_steps(steps: Tuple[WalkStep, ...],
                    verify: bool = False) -> Tuple[WalkStep, ...]:
    """Merge adjacent compute steps into one (the thread-mode analogue
    of routine compilation).

    Each compute step costs ``max(1, cycles)`` wall-clock cycles, so
    only runs where *every* step has ``cycles >= 1`` may merge —
    Σ max(1, cᵢ) == max(1, Σ cᵢ) holds exactly then; a zero-cycle step
    would gain a cycle inside a merge. DRAM steps are never touched
    (they publish yield events and block on fills).

    ``verify`` re-derives the timing/stat invariants on every fusion and
    raises :class:`CompileVerifyError` if merging would change them.
    """
    out: List[WalkStep] = []
    acc = 0
    for step in steps:
        if step.kind == "compute" and step.cycles >= 1:
            acc += step.cycles
            continue
        if acc:
            out.append(WalkStep("compute", cycles=acc))
            acc = 0
        out.append(step)
    if acc:
        out.append(WalkStep("compute", cycles=acc))
    fused = tuple(out)
    if verify:
        def wall(seq) -> Tuple[int, int, List[int]]:
            compute = sum(s.cycles for s in seq if s.kind == "compute")
            clock = sum(max(1, s.cycles) for s in seq if s.kind == "compute")
            drams = [s.addr for s in seq if s.kind == "dram"]
            return compute, clock, drams
        if wall(tuple(steps)) != wall(fused):
            raise CompileVerifyError(
                f"step fusion changed walk timing: {steps} -> {fused}"
            )
    return fused


class ThreadController(Component):
    """Blocking-thread walker execution on ``num_pipelines`` pipelines.

    ``context_bytes`` is the register state a thread pins while resident
    (a classic RISC pipeline context: 32 architectural + ~32 pipeline /
    control registers × 8 B = 512 B by default, vs the coroutine's
    handful of X-registers).
    """

    def __init__(self, sim: Simulator, dram: DRAMModel,
                 num_pipelines: int = 4, context_bytes: int = 512,
                 name: str = "thread-ctrl",
                 compile_mode: Optional[str] = None) -> None:
        super().__init__(sim, name)
        if num_pipelines <= 0:
            raise ValueError("need at least one pipeline")
        mode = compile_mode if compile_mode is not None \
            else default_compile_mode()
        if mode not in COMPILE_MODES:
            raise ValueError(
                f"compile_mode {mode!r} invalid; use one of {COMPILE_MODES}"
            )
        self.compile_mode = mode
        self.dram = dram
        self.num_pipelines = num_pipelines
        self.context_bytes = context_bytes
        self._pending: Deque[_Walk] = deque()
        # fusion memo: WalkStep is frozen/hashable, and workloads submit
        # the same walk shapes thousands of times — fuse each distinct
        # shape once. Verify mode bypasses the memo so every submission
        # re-derives the timing invariants in lockstep.
        self._fuse_cache: dict = {}
        self._next_uid = 0
        self._resident = 0
        self.occupancy_byte_cycles = 0
        self._last_update = 0
        self.walks_completed = 0
        self.last_completion = 0

    # ------------------------------------------------------------------
    # occupancy integral
    # ------------------------------------------------------------------
    def _advance(self) -> None:
        now = self.sim.now
        if now > self._last_update:
            self.occupancy_byte_cycles += (
                self._resident * self.context_bytes * (now - self._last_update)
            )
            self._last_update = now

    # ------------------------------------------------------------------
    # walk submission/execution
    # ------------------------------------------------------------------
    def submit(self, steps: Sequence[WalkStep]) -> None:
        """Queue one walk; it runs when a pipeline frees up."""
        uid = self._next_uid
        self._next_uid = uid + 1
        walk_steps = tuple(steps)
        if self.compile_mode != "off":
            if self.compile_mode == "verify":
                fused = fuse_walk_steps(walk_steps, verify=True)
            else:
                fused = self._fuse_cache.get(walk_steps)
                if fused is None:
                    if len(self._fuse_cache) >= _FUSE_CACHE_MAX:
                        self._fuse_cache.clear()
                    fused = fuse_walk_steps(walk_steps)
                    self._fuse_cache[walk_steps] = fused
            saved = len(walk_steps) - len(fused)
            if saved:
                self.stats.inc("steps_fused", saved)
            walk_steps = fused
        self._pending.append(_Walk(walk_steps, submitted_at=self.sim.now,
                                   uid=uid))
        bus = self.bus
        if bus is not None and bus.wants(RequestArrive):
            bus.publish(RequestArrive(cycle=self.sim.now,
                                      component=self.name,
                                      tag=(uid,), op="walk",
                                      req_id=uid))
        self._try_start()

    def _try_start(self) -> None:
        while self._pending and self._resident < self.num_pipelines:
            self._advance()
            walk = self._pending.popleft()
            walk.started_at = self.sim.now
            walk.resume = partial(self._step, walk)
            walk.on_fill = partial(self._resume_after_fill, walk)
            self._resident += 1
            self.stats.inc("walks_started")
            bus = self.bus
            if bus is not None:
                # a blocking thread's walk IS its request: uid doubles
                # as req_id and walk_id (the paper's point — the whole
                # journey pins one pipeline)
                if bus.wants(Miss):
                    bus.publish(Miss(cycle=self.sim.now,
                                     component=self.name,
                                     tag=(walk.uid,), op="walk",
                                     req_id=walk.uid, walk_id=walk.uid))
                if bus.wants(WalkerDispatch):
                    bus.publish(WalkerDispatch(cycle=self.sim.now,
                                               component=self.name,
                                               tag=(walk.uid,),
                                               routine="thread-walk",
                                               walk_id=walk.uid))
            self._step(walk)

    def _resume_after_fill(self, walk: _Walk, resp: MemResponse) -> None:
        bus = self.bus
        if bus is not None and bus.wants(WalkerWake):
            bus.publish(WalkerWake(cycle=self.sim.now,
                                   component=self.name,
                                   tag=(walk.uid,), reason="fill",
                                   walk_id=walk.uid))
        self._step(walk)

    def _step(self, walk: _Walk) -> None:
        if walk.step_index >= len(walk.steps):
            self._finish(walk)
            return
        step = walk.steps[walk.step_index]
        walk.step_index += 1
        if step.kind == "compute":
            self.stats.inc("compute_cycles", step.cycles)
            self.sim.call_after(max(1, step.cycles), walk.resume)
        else:
            self.stats.inc("dram_fetches")
            bus = self.bus
            if bus is not None and bus.wants(WalkerYield):
                # the thread blocks here: the profiler books the stall
                # as dram_wait against the (only) thread-walk routine
                bus.publish(WalkerYield(cycle=self.sim.now,
                                        component=self.name,
                                        tag=(walk.uid,),
                                        routine="thread-walk",
                                        fills=1, walk_id=walk.uid))
            self.dram.request(MemRequest(step.addr, walk_id=walk.uid),
                              walk.on_fill)

    def _finish(self, walk: _Walk) -> None:
        self._advance()
        self._resident -= 1
        self.walks_completed += 1
        self.last_completion = self.sim.now
        self.stats.histogram("walk_latency").add(self.sim.now - walk.started_at)
        self.stats.histogram("walk_turnaround").add(
            self.sim.now - walk.submitted_at
        )
        bus = self.bus
        if bus is not None and bus.wants(WalkerRetire):
            bus.publish(WalkerRetire(
                cycle=self.sim.now, component=self.name, tag=(walk.uid,),
                found=True, lifetime=self.sim.now - walk.started_at,
                walk_id=walk.uid, served=(walk.uid,)))
        self._try_start()

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def finalize(self) -> None:
        self._advance()

    @property
    def drained(self) -> bool:
        return not self._pending and self._resident == 0
