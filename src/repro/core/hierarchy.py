"""X-Cache hierarchies (§6): MX, MXA, and MXS composition.

* **MX** — multi-level X-Cache. The upstream L1 holds no walker: "it
  requests a meta-tag at a time from the downstream X-Cache. Only the
  last-level X-Cache includes a walker and address-translation."
  Implemented by :class:`MetaL1`.
* **MXA** — X-Cache over an address-based cache. The X-Cache walks and
  generates addresses at the boundary; the address cache sees a stream
  of line requests. Implemented by :class:`CacheBackedMemory`, an
  adapter that gives an :class:`~repro.mem.addrcache.AddressCache` the
  DRAM-port interface the controller expects. The two levels are
  non-inclusive (different namespaces).
* **MXS** — X-Cache plus streaming. Dense, affine structures bypass the
  X-Cache through :class:`StreamBuffer`, a decoupled sequential
  prefetcher (how SpArch streams matrix A while X-Cache holds B's rows).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Optional, Tuple

from ..mem.addrcache import AddressCache
from ..mem.dram import MemRequest, MemResponse
from ..mem.layout import MemoryImage
from ..sim import Component, Simulator
from .controller import Controller, MetaResponse

__all__ = ["CacheBackedMemory", "MetaL1", "StreamBuffer"]

Tag = Tuple[int, ...]


class CacheBackedMemory:
    """Adapter: the controller's DRAM port, served by an address cache.

    The controller issues block requests exactly as it would to DRAM;
    this adapter satisfies them from the address cache (which misses to
    real DRAM) and fetches the functional bytes from the shared image.
    """

    def __init__(self, cache: AddressCache, image: MemoryImage) -> None:
        self.cache = cache
        self.image = image

    def request(self, req: MemRequest,
                callback: Callable[[MemResponse], None]) -> None:
        block = req.addr & ~(self.cache.config.block_bytes - 1)

        def on_done(latency: int) -> None:
            if req.is_write:
                if req.data is not None:
                    self.image.write_block(block, req.data)
                callback(MemResponse(addr=block, data=b"", tag=req.tag,
                                     latency=latency))
            else:
                data = self.image.read_block(
                    block, self.cache.config.block_bytes
                )
                callback(MemResponse(addr=block, data=data, tag=req.tag,
                                     latency=latency))

        self.cache.access(block, req.is_write, on_done)


class MetaL1(Component):
    """Walker-less upstream X-Cache level (the MX hierarchy's L1).

    Holds a small meta-tagged store; misses forward the meta request one
    tag at a time to the downstream (last-level) X-Cache controller.
    Metadata is a global namespace, so the same tag is used at every
    level.
    """

    def __init__(self, sim: Simulator, downstream: Controller,
                 entries: int = 64, hit_latency: int = 1,
                 name: str = "xcache-l1") -> None:
        super().__init__(sim, name)
        if entries <= 0:
            raise ValueError("entries must be positive")
        self.downstream = downstream
        self.entries = entries
        self.hit_latency = hit_latency
        self._store: "OrderedDict[Tag, bytes]" = OrderedDict()
        self._pending: Dict[int, Callable[[MetaResponse], None]] = {}
        self._waiting: Dict[Tag, list] = {}
        downstream.set_response_handler(self._on_downstream)

    def meta_load(self, tag: Tag,
                  callback: Callable[[MetaResponse], None],
                  walk_fields: Optional[Dict[str, int]] = None) -> None:
        self.stats.inc("meta_loads")
        cached = self._store.get(tag)
        if cached is not None:
            self._store.move_to_end(tag)
            self.stats.inc("hits")
            issued = self.sim.now
            self.sim.call_after(
                self.hit_latency,
                lambda: callback(MetaResponse(
                    request=None, status=1, data=cached,
                    completed_at=issued + self.hit_latency)),
            )
            return
        self.stats.inc("misses")
        waiters = self._waiting.setdefault(tag, [])
        waiters.append(callback)
        if len(waiters) == 1:
            msg = self.downstream.meta_load(tag, walk_fields=walk_fields)
            self._pending[msg.uid] = tag

    def _on_downstream(self, resp: MetaResponse) -> None:
        tag = self._pending.pop(resp.request.uid, None)
        if tag is None:
            return
        if resp.found:
            self._install(tag, resp.data)
        for callback in self._waiting.pop(tag, []):
            callback(resp)

    def _install(self, tag: Tag, data: bytes) -> None:
        if tag in self._store:
            self._store.move_to_end(tag)
            self._store[tag] = data
            return
        while len(self._store) >= self.entries:
            self._store.popitem(last=False)
            self.stats.inc("evictions")
        self._store[tag] = data
        self.stats.inc("fills")

    def hit_rate(self) -> float:
        total = self.stats.get("hits") + self.stats.get("misses")
        return self.stats.get("hits") / total if total else 0.0


class StreamBuffer(Component):
    """Decoupled sequential prefetcher over a dense array (MXS).

    Reads must be issued in non-decreasing element order (a stream). The
    buffer runs ``depth`` blocks ahead; in-window reads cost one cycle.
    """

    def __init__(self, sim: Simulator, dram, base_addr: int,
                 element_bytes: int, num_elements: int,
                 depth: int = 4, name: str = "stream") -> None:
        super().__init__(sim, name)
        if element_bytes <= 0 or num_elements < 0:
            raise ValueError("bad stream geometry")
        self.dram = dram
        self.base_addr = base_addr
        self.element_bytes = element_bytes
        self.num_elements = num_elements
        self.depth = depth
        self.block_bytes = dram.config.block_bytes
        self._ready_blocks: Dict[int, bytes] = {}
        self._inflight: Dict[int, list] = {}
        self._next_prefetch = base_addr & ~(self.block_bytes - 1)
        self._end_addr = base_addr + element_bytes * num_elements
        self._last_read = -1

    def _prefetch(self) -> None:
        while (len(self._ready_blocks) + len(self._inflight) < self.depth
               and self._next_prefetch < self._end_addr):
            block = self._next_prefetch
            self._next_prefetch += self.block_bytes
            self._inflight[block] = []
            self.stats.inc("prefetches")

            def on_fill(resp: MemResponse, block: int = block) -> None:
                waiters = self._inflight.pop(block, [])
                self._ready_blocks[block] = resp.data
                for waiter in waiters:
                    waiter()

            self.dram.request(MemRequest(block), on_fill)

    def read(self, index: int, callback: Callable[[bytes], None]) -> None:
        """Fetch element ``index``; callback receives its bytes."""
        if not 0 <= index < self.num_elements:
            raise IndexError(f"stream index {index} outside "
                             f"[0, {self.num_elements})")
        if index < self._last_read:
            raise ValueError(
                f"stream read {index} after {self._last_read}: streams are "
                "forward-only"
            )
        self._last_read = index
        addr = self.base_addr + index * self.element_bytes
        block = addr & ~(self.block_bytes - 1)
        self.stats.inc("reads")
        self._prefetch()

        def deliver() -> None:
            data = self._ready_blocks[block]
            off = addr - block
            # Retire blocks behind the stream head.
            for b in [b for b in self._ready_blocks if b < block]:
                del self._ready_blocks[b]
            self._prefetch()
            self.sim.call_after(1, lambda: callback(
                data[off:off + self.element_bytes]))

        if block in self._ready_blocks:
            self.stats.inc("stream_hits")
            deliver()
        elif block in self._inflight:
            self._inflight[block].append(deliver)
        else:
            # Read jumped past the prefetch window: fetch directly.
            self.stats.inc("window_misses")
            self._inflight[block] = [deliver]

            def on_fill(resp: MemResponse, block: int = block) -> None:
                waiters = self._inflight.pop(block, [])
                self._ready_blocks[block] = resp.data
                for waiter in waiters:
                    waiter()

            self.dram.request(MemRequest(block), on_fill)
            if self._next_prefetch <= block:
                self._next_prefetch = block + self.block_bytes
