"""Parallel harness: byte-identical output and suite disk memoization."""

import pickle

import pytest

from repro.harness import suite
from repro.harness.parallel import run_parallel, run_serial
from repro.harness.suite import SUITE_CACHE_ENV, run_fig14_suite


# tab01/tab02 are metadata tables — cheap enough to run twice in a test
CHEAP = ["tab01", "tab02"]


def test_parallel_matches_serial_byte_for_byte():
    serial = run_serial(CHEAP, "ci")
    parallel = run_parallel(CHEAP, "ci", jobs=2)
    assert parallel == serial
    assert all(ok for _rendered, ok in serial)


def test_parallel_falls_back_to_serial_for_one_job():
    assert run_parallel(CHEAP, "ci", jobs=1) == run_serial(CHEAP, "ci")


def test_cli_parallel_flag(capsys):
    from repro.harness.__main__ import main

    rc_serial = main(CHEAP + ["--profile", "ci"])
    out_serial = capsys.readouterr().out
    rc_parallel = main(CHEAP + ["--profile", "ci", "--parallel", "2"])
    out_parallel = capsys.readouterr().out
    assert rc_parallel == rc_serial
    assert out_parallel == out_serial


def test_cli_rejects_unknown_experiment():
    from repro.harness.__main__ import main

    with pytest.raises(SystemExit):
        main(["no-such-figure"])


def test_suite_disk_cache_round_trip(tmp_path, monkeypatch):
    monkeypatch.setenv(SUITE_CACHE_ENV, str(tmp_path))
    suite.clear_cache()
    try:
        first = run_fig14_suite("ci", workloads=("dasx",))
        cached_files = list(tmp_path.glob("suite_ci_*.pkl"))
        assert len(cached_files) == 1

        # a second process would start cold: clear the in-memory layer
        # and verify the reload comes from disk with identical numbers
        suite.clear_cache()
        reloaded = run_fig14_suite("ci", workloads=("dasx",))
        assert reloaded["dasx"].xcache.cycles == first["dasx"].xcache.cycles
        assert (reloaded["dasx"].speedup_vs_baseline
                == first["dasx"].speedup_vs_baseline)
    finally:
        suite.clear_cache()


def test_suite_disk_cache_tolerates_corruption(tmp_path, monkeypatch):
    monkeypatch.setenv(SUITE_CACHE_ENV, str(tmp_path))
    suite.clear_cache()
    try:
        run_fig14_suite("ci", workloads=("dasx",))
        (cached,) = tmp_path.glob("suite_ci_*.pkl")
        cached.write_bytes(b"not a pickle")
        suite.clear_cache()
        # torn/corrupt cache entry must fall through to a fresh run
        result = run_fig14_suite("ci", workloads=("dasx",))
        assert result["dasx"].all_checked
        # and the fresh run repaired the disk entry
        with cached.open("rb") as fh:
            assert "dasx" in pickle.load(fh)["suite"]
    finally:
        suite.clear_cache()


def test_suite_disk_cache_invalidates_old_format(tmp_path, monkeypatch):
    """Entries written by older revisions are treated as misses.

    The pre-service layout pickled the suite dict bare (no wrapper, no
    key, filename digest from ``repr()``); such a file at today's path
    must invalidate quietly — fresh run, overwritten entry — never crash
    or serve a stale suite.
    """
    monkeypatch.setenv(SUITE_CACHE_ENV, str(tmp_path))
    suite.clear_cache()
    try:
        key = ("ci", ("dasx",))
        path = suite._disk_cache_path(key)
        with path.open("wb") as fh:
            pickle.dump({"dasx": "stale-old-format-entry"}, fh)
        result = run_fig14_suite("ci", workloads=("dasx",))
        assert result["dasx"].all_checked  # simulated fresh, not stale
        with path.open("rb") as fh:
            repaired = pickle.load(fh)
        assert repaired["format"] == suite.SUITE_CACHE_FORMAT
        assert repaired["key"] == suite._canonical_key(key)

        # a wrapper whose key disagrees (e.g. another code version)
        # also invalidates
        suite.clear_cache()
        stale_key = dict(suite._canonical_key(key), code="0" * 16)
        with path.open("wb") as fh:
            pickle.dump({"format": suite.SUITE_CACHE_FORMAT,
                         "key": stale_key,
                         "suite": {"dasx": "wrong-code-version"}}, fh)
        result = run_fig14_suite("ci", workloads=("dasx",))
        assert result["dasx"].all_checked
    finally:
        suite.clear_cache()
