"""Unit tests for the banked DRAM timing model."""

import pytest

from repro.mem import DRAMConfig, DRAMModel, MemRequest, MemoryImage
from repro.sim import Simulator


def make_dram(**kw):
    sim = Simulator()
    image = MemoryImage()
    return sim, image, DRAMModel(sim, image, DRAMConfig(**kw))


def test_read_returns_functional_block():
    sim, image, dram = make_dram()
    addr = image.alloc(64, align=64)
    image.write_u64(addr + 8, 777)
    got = {}
    dram.request(MemRequest(addr), lambda r: got.update(data=r.data))
    sim.run()
    assert int.from_bytes(got["data"][8:16], "little") == 777


def test_response_is_block_aligned():
    sim, image, dram = make_dram()
    got = {}
    dram.request(MemRequest(100), lambda r: got.update(addr=r.addr))
    sim.run()
    assert got["addr"] == 64


def test_cold_access_latency():
    sim, _image, dram = make_dram()
    cfg = dram.config
    got = {}
    dram.request(MemRequest(0), lambda r: got.update(lat=r.latency))
    sim.run()
    assert got["lat"] == cfg.t_rcd + cfg.t_cl + cfg.burst_cycles


def test_row_hit_faster_than_conflict():
    sim, _image, dram = make_dram()
    lat = []
    # same row twice -> second is a row hit
    dram.request(MemRequest(0), lambda r: lat.append(r.latency))
    sim.run()
    dram.request(MemRequest(64), lambda r: lat.append(r.latency))
    sim.run()
    # different row, same bank -> conflict
    row_span = dram.config.row_bytes * dram.config.num_banks
    dram.request(MemRequest(row_span), lambda r: lat.append(r.latency))
    sim.run()
    assert lat[1] < lat[0] < lat[2]
    assert dram.stats.get("row_hits") == 1
    assert dram.stats.get("row_conflicts") == 1


def test_bank_interleaving_by_row():
    _sim, _image, dram = make_dram(num_banks=4, row_bytes=2048)
    assert dram.bank_of(0) == 0
    assert dram.bank_of(2048) == 1
    assert dram.bank_of(4096) == 2
    assert dram.bank_of(2048 * 4) == 0


def test_bus_serializes_parallel_requests():
    sim, _image, dram = make_dram()
    done = []
    # different banks -> bank-parallel, but one data bus
    for i in range(4):
        dram.request(MemRequest(i * 2048),
                     lambda r, i=i: done.append((i, sim.now)))
    sim.run()
    times = [t for _i, t in sorted(done)]
    for t1, t2 in zip(times, times[1:]):
        assert t2 - t1 >= dram.config.burst_cycles


def test_write_updates_image():
    sim, image, dram = make_dram()
    addr = image.alloc(64, align=64)
    payload = bytes([7] * 64)
    dram.request(MemRequest(addr, is_write=True, data=payload),
                 lambda r: None)
    sim.run()
    assert image.read_block(addr, 64) == payload
    assert dram.stats.get("writes") == 1


def test_access_counters():
    sim, _image, dram = make_dram()
    for i in range(3):
        dram.request(MemRequest(i * 64), lambda r: None)
    dram.request(MemRequest(0, is_write=True), lambda r: None)
    sim.run()
    assert dram.total_accesses == 4
    assert dram.stats.get("bytes") == 4 * 64


def test_row_hit_rate():
    sim, _image, dram = make_dram()
    dram.request(MemRequest(0), lambda r: None)
    sim.run()
    dram.request(MemRequest(64), lambda r: None)
    sim.run()
    assert dram.row_hit_rate() == pytest.approx(0.5)


def test_invalid_geometry_rejected():
    with pytest.raises(ValueError):
        DRAMConfig(num_banks=3)
    with pytest.raises(ValueError):
        DRAMConfig(block_bytes=48)
    with pytest.raises(ValueError):
        DRAMConfig(row_bytes=100, block_bytes=64)


def test_latency_histogram_collected():
    sim, _image, dram = make_dram()
    for i in range(5):
        dram.request(MemRequest(i * 64), lambda r: None)
    sim.run()
    hist = dram.stats.histogram("latency")
    assert hist.count == 5
    assert hist.mean > 0
