"""Unit tests for the address-tagged cache (the Figure-14 comparator)."""

import pytest

from repro.mem import (
    AddressCache,
    CacheConfig,
    DRAMConfig,
    DRAMModel,
    MemoryImage,
)
from repro.sim import Simulator


def make_cache(**kw):
    sim = Simulator()
    image = MemoryImage()
    dram = DRAMModel(sim, image, DRAMConfig())
    cache = AddressCache(sim, dram, CacheConfig(**kw))
    return sim, dram, cache


def run_access(sim, cache, addr, is_write=False):
    out = {}
    cache.access(addr, is_write, lambda lat: out.update(lat=lat))
    sim.run()
    return out["lat"]


def test_miss_then_hit():
    sim, dram, cache = make_cache()
    miss_lat = run_access(sim, cache, 0x1000)
    hit_lat = run_access(sim, cache, 0x1000)
    assert miss_lat > hit_lat
    assert hit_lat == cache.config.hit_latency
    assert cache.stats.get("misses") == 1
    assert cache.stats.get("hits") == 1


def test_same_block_shares_line():
    sim, _dram, cache = make_cache()
    run_access(sim, cache, 0x1000)
    assert run_access(sim, cache, 0x1030) == cache.config.hit_latency


def test_hit_rate():
    sim, _dram, cache = make_cache()
    run_access(sim, cache, 0)
    run_access(sim, cache, 0)
    run_access(sim, cache, 0)
    assert cache.hit_rate() == pytest.approx(2 / 3)


def test_lru_eviction_within_set():
    sim, _dram, cache = make_cache(ways=2, sets=1)
    run_access(sim, cache, 0)      # A
    run_access(sim, cache, 64)     # B
    run_access(sim, cache, 0)      # touch A
    run_access(sim, cache, 128)    # C evicts B (LRU)
    assert cache.contains(0)
    assert not cache.contains(64)
    assert cache.contains(128)


def test_write_miss_allocates_and_dirties():
    sim, dram, cache = make_cache(ways=1, sets=1)
    run_access(sim, cache, 0, is_write=True)
    assert cache.contains(0)
    run_access(sim, cache, 64)  # evicts dirty line -> writeback
    sim.run()
    assert cache.stats.get("writebacks") == 1
    assert dram.stats.get("writes") == 1


def test_mshr_merges_concurrent_misses():
    sim, dram, cache = make_cache()
    done = []
    cache.access(0x2000, False, lambda lat: done.append(lat))
    cache.access(0x2008, False, lambda lat: done.append(lat))
    sim.run()
    assert len(done) == 2
    assert dram.stats.get("reads") == 1
    assert cache.stats.get("mshr_merges") == 1


def test_mshr_full_backpressure_retries():
    sim, dram, cache = make_cache(mshr_entries=1)
    done = []
    cache.access(0x1000, False, lambda lat: done.append("a"))
    cache.access(0x2000, False, lambda lat: done.append("b"))
    sim.run()
    assert sorted(done) == ["a", "b"]
    assert cache.stats.get("mshr_stalls") >= 1


def test_port_serialization():
    sim, _dram, cache = make_cache(ports=1)
    # warm two blocks
    run_access(sim, cache, 0)
    run_access(sim, cache, 64)
    done = []
    cache.access(0, False, lambda lat: done.append(sim.now))
    cache.access(64, False, lambda lat: done.append(sim.now))
    sim.run()
    assert done[1] == done[0] + 1  # second hit waits one port slot


def test_multi_port_same_cycle():
    sim, _dram, cache = make_cache(ports=2)
    run_access(sim, cache, 0)
    run_access(sim, cache, 64)
    done = []
    cache.access(0, False, lambda lat: done.append(sim.now))
    cache.access(64, False, lambda lat: done.append(sim.now))
    sim.run()
    assert done[0] == done[1]


def test_preload_installs_without_traffic():
    sim, dram, cache = make_cache()
    cache.preload(0x3000)
    assert cache.contains(0x3000)
    assert dram.total_accesses == 0
    assert run_access(sim, cache, 0x3000) == cache.config.hit_latency


def test_capacity_bytes():
    cfg = CacheConfig(ways=4, sets=16, block_bytes=64)
    assert cfg.capacity_bytes == 4 * 16 * 64


def test_geometry_validation():
    with pytest.raises(ValueError):
        CacheConfig(sets=3)
    with pytest.raises(ValueError):
        CacheConfig(ways=0)
    with pytest.raises(ValueError):
        CacheConfig(block_bytes=33)


def test_fill_counted():
    sim, _dram, cache = make_cache()
    run_access(sim, cache, 0)
    assert cache.stats.get("fills") == 1
