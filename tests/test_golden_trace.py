"""Golden-trace determinism: bucketed kernel vs the reference heap kernel.

The bucketed scheduler is only a performance change; it must execute the
*identical* event sequence the seed heapq kernel did. These tests run
real experiment drivers under both kernels and compare

* the per-cycle event trace digest of a traced Widx run (any reorder,
  even within one cycle, changes the hash), and
* the fully rendered reports of fig04 and fig07 at the ``ci`` profile
  (string equality — every measured number must match).
"""

import pytest

from repro.harness import run_experiment
from repro.sim import Tracer, use_kernel
from repro.workloads.tpch import make_widx_workload


def _traced_widx_run(kernel: str):
    from repro.dsa.widx import WidxXCacheModel

    workload = make_widx_workload(
        num_keys=512, num_probes=1024, num_buckets=512,
        skew=1.3, hash_cycles=10, seed=3,
    )
    with use_kernel(kernel):
        model = WidxXCacheModel(workload, window=16)
        tracer = Tracer(capacity=100_000)
        model.system.controller.tracer = tracer
        result = model.run()
    return tracer, result


def test_widx_trace_digest_matches_heap_kernel():
    heap_trace, heap_result = _traced_widx_run("heap")
    bucket_trace, bucket_result = _traced_widx_run("bucket")
    assert heap_trace.total_emitted > 0
    assert bucket_trace.digest() == heap_trace.digest()
    assert bucket_result.cycles == heap_result.cycles
    assert bucket_result.dram_accesses == heap_result.dram_accesses


@pytest.mark.parametrize("exp_id", ["fig04", "fig07"])
def test_experiment_reports_identical_across_kernels(exp_id):
    with use_kernel("heap"):
        heap_report = run_experiment(exp_id, "ci").render()
    with use_kernel("bucket"):
        bucket_report = run_experiment(exp_id, "ci").render()
    assert bucket_report == heap_report


def test_widx_trace_digest_survives_snapshot_restore(tmp_path):
    """run-to-mid → snapshot → restore → run-to-end must emit the
    *identical* event trace a straight run emits — the same golden
    digest that pins the kernel rewrite pins checkpoint/restore."""
    from repro.sim import checkpoint as ck

    straight_trace, straight_result = _traced_widx_run("bucket")

    from repro.dsa.widx import WidxXCacheModel

    workload = make_widx_workload(
        num_keys=512, num_probes=1024, num_buckets=512,
        skew=1.3, hash_cycles=10, seed=3,
    )
    with use_kernel("bucket"):
        model = WidxXCacheModel(workload, window=16)
        tracer = Tracer(capacity=100_000)
        model.system.controller.tracer = tracer
        ck.warm_model(model, straight_result.cycles // 2)
        ck.save_model(str(tmp_path / "traced.ckpt"), model)
        del model, tracer
        restored, header = ck.load_model(str(tmp_path / "traced.ckpt"))
        resumed_result = ck.finish_model(restored)
        resumed_tracer = restored.system.controller.tracer
    assert header["cycle"] == straight_result.cycles // 2
    assert resumed_tracer.digest() == straight_trace.digest()
    assert resumed_result == straight_result
