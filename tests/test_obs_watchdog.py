"""Tests for the pathology watchdog (`repro.obs.watchdog`)."""

import io

from repro.obs import (
    DRAMComplete,
    DRAMIssue,
    EventBus,
    Hit,
    Miss,
    WalkerDispatch,
    WalkerRetire,
    WalkerWake,
    WalkerYield,
    WatchdogProcessor,
)


def _watched_bus(**kw):
    bus = EventBus()
    return bus, bus.attach(WatchdogProcessor(**kw))


def _issue(cycle, addr=0):
    return DRAMIssue(cycle=cycle, component="dram", addr=addr,
                     is_write=False, bank=0, row_result="row_hits",
                     complete_at=cycle + 20, nbytes=64)


def test_livelock_flagged_once_per_episode():
    bus, dog = _watched_bus(livelock_cycles=100)
    bus.publish(Miss(cycle=0, component="ctl", tag=(1,), op="L"))
    # in-flight walker churns yields with no retire for > 100 cycles
    for cycle in (50, 120, 180, 260):
        bus.publish(WalkerYield(cycle=cycle, component="ctl", tag=(1,),
                                routine="R", fills=1))
    assert dog.count("livelock") == 1
    assert "no retire for" in dog.warnings[0].detail


def test_retire_resets_livelock_window():
    bus, dog = _watched_bus(livelock_cycles=100)
    bus.publish(Miss(cycle=0, component="ctl", tag=(1,), op="L"))
    bus.publish(WalkerRetire(cycle=90, component="ctl", tag=(1,),
                             found=True, lifetime=90))
    bus.publish(Miss(cycle=95, component="ctl", tag=(2,), op="L"))
    bus.publish(WalkerYield(cycle=150, component="ctl", tag=(2,),
                            routine="R", fills=1))
    assert dog.count("livelock") == 0  # only 60 cycles since progress


def test_no_livelock_without_active_walkers():
    bus, dog = _watched_bus(livelock_cycles=10)
    bus.publish(Hit(cycle=5000, component="ctl", tag=(1,)))
    bus.publish(_issue(9000))
    assert dog.count("livelock") == 0


def test_mshr_saturation_episodes():
    bus, dog = _watched_bus(mshr_limit=4)
    for i in range(4):
        bus.publish(_issue(i, addr=64 * i))
    assert dog.count("mshr_saturation") == 1
    # staying saturated does not re-warn
    bus.publish(_issue(5, addr=640))
    assert dog.count("mshr_saturation") == 1
    # drain below half the limit re-arms the episode
    for i in range(4):
        bus.publish(DRAMComplete(cycle=10 + i, component="dram",
                                 addr=64 * i, latency=10))
    for i in range(4):
        bus.publish(_issue(20 + i, addr=1024 + 64 * i))
    assert dog.count("mshr_saturation") == 2


def test_starvation_on_wake_and_retire():
    bus, dog = _watched_bus(starvation_cycles=100)
    bus.publish(WalkerYield(cycle=0, component="ctl", tag=(1,),
                            routine="R", fills=1))
    bus.publish(WalkerWake(cycle=500, component="ctl", tag=(1,),
                           reason="Fill"))
    assert dog.count("starvation") == 1
    # a walker that dies dormant is caught at retire
    bus.publish(WalkerYield(cycle=600, component="ctl", tag=(2,),
                            routine="R", fills=0))
    bus.publish(WalkerRetire(cycle=900, component="ctl", tag=(2,),
                             found=False, lifetime=300))
    assert dog.count("starvation") == 2


def test_prompt_wake_is_not_starvation():
    bus, dog = _watched_bus(starvation_cycles=100)
    bus.publish(WalkerYield(cycle=0, component="ctl", tag=(1,),
                            routine="R", fills=1))
    bus.publish(WalkerWake(cycle=40, component="ctl", tag=(1,),
                           reason="Fill"))
    # dispatch clears any dormant bookkeeping too
    bus.publish(WalkerYield(cycle=41, component="ctl", tag=(1,),
                            routine="R", fills=1))
    bus.publish(WalkerDispatch(cycle=80, component="ctl", tag=(1,),
                               routine="R2"))
    bus.publish(WalkerRetire(cycle=999, component="ctl", tag=(1,),
                             found=True, lifetime=999))
    assert dog.count("starvation") == 0


def test_stream_mirrors_warnings():
    out = io.StringIO()
    bus, dog = _watched_bus(mshr_limit=1, stream=out)
    bus.publish(_issue(7))
    assert dog.count("mshr_saturation") == 1
    line = out.getvalue()
    assert line.startswith("[obs] WARNING mshr_saturation @7 dram:")


def test_healthy_real_run_stays_quiet(mini_system):
    dog = mini_system.observe(WatchdogProcessor())
    addr = mini_system.image.alloc_u64_array(list(range(8)))
    for i in range(8):
        mini_system.load((i,), walk_fields={"addr": addr + 8 * i})
    mini_system.run()
    assert dog.warnings == []
