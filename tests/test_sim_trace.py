"""Tests for the event tracer and its controller integration."""

import pytest

from repro.sim import TraceEvent, Tracer


def test_emit_and_inspect():
    tracer = Tracer()
    tracer.emit(5, "ctl", "hit", tag=(1,))
    tracer.emit(9, "ctl", "fill", addr=64)
    assert len(tracer) == 2
    assert tracer.count("hit") == 1
    assert tracer.events()[0].get("tag") == (1,)
    assert tracer.events()[1].cycle == 9


def test_ring_buffer_drops_oldest():
    tracer = Tracer(capacity=3)
    for i in range(5):
        tracer.emit(i, "c", "k", n=i)
    assert len(tracer) == 3
    assert tracer.dropped == 2
    assert tracer.total_emitted == 5
    assert [e.get("n") for e in tracer.events()] == [2, 3, 4]


def test_kind_filtering_at_emit():
    tracer = Tracer(kinds=("hit",))
    tracer.emit(1, "c", "hit")
    tracer.emit(2, "c", "fill")
    assert tracer.count("hit") == 1
    assert tracer.count("fill") == 0


def test_filter_by_component_and_predicate():
    tracer = Tracer()
    tracer.emit(1, "a", "hit", tag=(1,))
    tracer.emit(2, "b", "hit", tag=(2,))
    assert len(tracer.filter(component="a")) == 1
    assert len(tracer.filter(kind="hit")) == 2
    assert len(tracer.filter(predicate=lambda e: e.get("tag") == (2,))) == 1


def test_render_and_clear():
    tracer = Tracer()
    tracer.emit(1, "ctl", "retire", found=True)
    text = tracer.render()
    assert "retire" in text and "found=True" in text
    tracer.clear()
    assert len(tracer) == 0


def test_clear_resets_counters_and_digest():
    # regression: clear() used to empty the ring but leave total_emitted
    # and dropped stale, so a cleared tracer's digest never matched a
    # fresh tracer fed the identical trace
    tracer = Tracer(capacity=2)
    for i in range(5):
        tracer.emit(i, "c", "k", n=i)
    assert tracer.total_emitted == 5 and tracer.dropped == 3
    tracer.clear()
    assert len(tracer) == 0
    assert tracer.total_emitted == 0
    assert tracer.dropped == 0
    assert tracer.digest() == Tracer(capacity=2).digest()
    tracer.emit(0, "c", "k")
    fresh = Tracer(capacity=2)
    fresh.emit(0, "c", "k")
    assert tracer.digest() == fresh.digest()


def test_render_last_n():
    tracer = Tracer()
    for i in range(10):
        tracer.emit(i, "c", "k")
    assert len(tracer.render(last=3).splitlines()) == 3


def test_capacity_validation():
    with pytest.raises(ValueError):
        Tracer(capacity=0)


def test_event_default_get():
    event = TraceEvent(1, "c", "k")
    assert event.get("missing", 42) == 42


def test_controller_emits_trace(mini_system):
    tracer = Tracer()
    mini_system.controller.tracer = tracer
    addr = mini_system.image.alloc_u64_array([1])
    mini_system.load((1,), walk_fields={"addr": addr})
    mini_system.run()
    mini_system.load((1,), walk_fields={"addr": addr})
    mini_system.run()
    kinds = tracer.kinds()
    assert kinds.get("walk_start") == 1
    assert kinds.get("dispatch") == 2      # Default + Wait routines
    assert kinds.get("fill") == 1
    assert kinds.get("retire") == 1
    assert kinds.get("hit") == 1


def test_trace_invariant_one_dispatch_per_routine(mini_system):
    tracer = Tracer()
    mini_system.controller.tracer = tracer
    addr = mini_system.image.alloc_u64_array(list(range(6)))
    for i in range(6):
        mini_system.load((i,), walk_fields={"addr": addr + 8 * i})
    mini_system.run()
    assert tracer.count("walk_start") == 6
    assert tracer.count("retire") == 6
    assert tracer.count("fill") == 6
    # every retire happens after its walk_start
    starts = {e.get("tag"): e.cycle for e in tracer.filter("walk_start")}
    for retire in tracer.filter("retire"):
        assert retire.cycle > starts[retire.get("tag")]


def test_merge_traced(mini_system):
    tracer = Tracer()
    mini_system.controller.tracer = tracer
    addr = mini_system.image.alloc_u64_array([1])
    mini_system.load((1,), walk_fields={"addr": addr})
    mini_system.load((1,), walk_fields={"addr": addr})
    mini_system.run()
    assert tracer.count("merge") == 1
