"""Tests for the energy/power model."""

import pytest

from repro.core import EnergyBreakdown, EnergyModel, EnergyParams


def test_table4_defaults():
    p = EnergyParams()
    assert p.register_bit == 8.9e-03
    assert p.add_bit == 2.1e-01
    assert p.mul_bit == 12.6
    assert p.bitwise_bit == 1.8e-02
    assert p.shift_bit == 4.1e-01
    assert p.tag_byte == 2.7
    assert p.l1_per_32b == 44.8


def test_sram_access_scales_with_capacity():
    p = EnergyParams()
    small = p.sram_access_pj(8 * 1024)
    ref = p.sram_access_pj(32 * 1024)
    big = p.sram_access_pj(256 * 1024)
    assert small < ref < big
    assert ref == pytest.approx(44.8)


def test_sram_access_clamped():
    p = EnergyParams()
    assert p.sram_access_pj(1) == pytest.approx(44.8 * 0.1)
    assert p.sram_access_pj(1 << 40) == pytest.approx(44.8 * 2.5)


def test_tag_probe_serial_activity():
    p = EnergyParams()
    assert p.tag_probe_pj(8) == pytest.approx(2.7 * 8 * 0.125)


def test_breakdown_accumulates():
    b = EnergyBreakdown(runtime_cycles=100)
    b.add("data_ram", 50.0)
    b.add("data_ram", 50.0)
    b.add("xregs", 100.0)
    assert b.total_pj == 200.0
    assert b.share("data_ram") == pytest.approx(0.5)
    assert b.group_share("data_ram", "xregs") == pytest.approx(1.0)


def test_power_is_energy_over_time():
    b = EnergyBreakdown(runtime_cycles=200)
    b.add("x", 400.0)
    assert b.power_mw() == pytest.approx(2.0)  # pJ/ns = mW


def test_power_zero_runtime():
    b = EnergyBreakdown(runtime_cycles=0)
    b.add("x", 10.0)
    assert b.power_mw() == 0.0


def test_empty_breakdown_shares():
    b = EnergyBreakdown()
    assert b.share("anything") == 0.0
    assert b.group_share("a", "b") == 0.0


def test_xcache_breakdown_from_run(mini_system):
    addr = mini_system.image.alloc_u64_array([1])
    mini_system.load((1,), walk_fields={"addr": addr})
    mini_system.run()
    mini_system.load((1,))
    mini_system.run()
    breakdown = EnergyModel().xcache_breakdown(mini_system.controller,
                                               mini_system.now)
    for comp in ("data_ram", "meta_tags", "routine_ram", "xregs",
                 "agen_alu", "controller_other"):
        assert comp in breakdown.components
        assert breakdown.components[comp] >= 0.0
    assert breakdown.total_pj > 0


def test_more_traffic_more_energy(mini_walker, mini_config):
    from repro.core import XCacheSystem
    totals = []
    for loads in (2, 8):
        system = XCacheSystem(mini_config, mini_walker)
        addr = system.image.alloc_u64_array(list(range(loads)))
        for i in range(loads):
            system.load((i,), walk_fields={"addr": addr + 8 * i})
        system.run()
        totals.append(EnergyModel().xcache_breakdown(
            system.controller, system.now).total_pj)
    assert totals[1] > totals[0]


def test_address_cache_breakdown():
    from repro.mem import AddressCache, CacheConfig, DRAMModel, MemoryImage
    from repro.sim import Simulator
    sim = Simulator()
    image = MemoryImage()
    dram = DRAMModel(sim, image)
    cache = AddressCache(sim, dram, CacheConfig())
    done = []
    for i in range(4):
        cache.access(i * 64, False, lambda lat: done.append(lat))
    sim.run()
    breakdown = EnergyModel().address_cache_breakdown(
        cache, sim.now, agen_ops=10, hash_ops=4, hash_cycles=60)
    assert breakdown.components["data_ram"] > 0
    assert breakdown.components["addr_tags"] > 0
    assert breakdown.components["agen_alu"] > 0


def test_hash_cycles_priced_as_bitwise():
    p = EnergyParams()
    model = EnergyModel(p)
    from repro.mem import AddressCache, CacheConfig, DRAMModel, MemoryImage
    from repro.sim import Simulator
    sim = Simulator()
    cache = AddressCache(sim, DRAMModel(sim, MemoryImage()), CacheConfig())
    b1 = model.address_cache_breakdown(cache, 1, hash_ops=1, hash_cycles=10)
    b2 = model.address_cache_breakdown(cache, 1, hash_ops=1, hash_cycles=60)
    assert b2.components["agen_alu"] == pytest.approx(
        6 * b1.components["agen_alu"])
