"""Unit tests for counters, histograms, stat groups, and geomean."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.sim import Counter, Histogram, StatGroup, geomean
from repro.sim.stats import (
    STATS_COUNTERS,
    STATS_FULL,
    STATS_OFF,
    stats_level,
    stats_scope,
)


def test_counter_increments():
    c = Counter("x")
    c.inc()
    c.inc(4)
    assert c.value == 5
    assert int(c) == 5


def test_counter_reset():
    c = Counter("x")
    c.inc(3)
    c.reset()
    assert c.value == 0


def test_histogram_mean_and_range():
    h = Histogram("lat")
    for v in (1, 2, 3, 4):
        h.add(v)
    assert h.mean == 2.5
    assert h.min_seen == 1
    assert h.max_seen == 4
    assert h.count == 4


def test_histogram_weighted_add():
    h = Histogram("lat")
    h.add(10, weight=3)
    h.add(20)
    assert h.count == 4
    assert h.total == 50


def test_histogram_percentiles():
    h = Histogram("lat")
    for v in range(1, 101):
        h.add(v)
    assert h.percentile(0.5) == 50
    assert h.percentile(0.9) == 90
    assert h.percentile(1.0) == 100


def test_histogram_percentile_bounds():
    h = Histogram("lat")
    h.add(5)
    with pytest.raises(ValueError):
        h.percentile(1.5)


def test_empty_histogram_defaults():
    h = Histogram("lat")
    assert h.mean == 0.0
    assert h.percentile(0.5) == 0


def test_histogram_items_sorted():
    h = Histogram("lat")
    for v in (5, 1, 3, 1):
        h.add(v)
    assert h.items() == [(1, 2), (3, 1), (5, 1)]


def test_statgroup_lazy_counters():
    g = StatGroup("g")
    g.inc("a")
    g.inc("a", 2)
    assert g.get("a") == 3
    assert g.get("missing") == 0
    assert g.get("missing", 7) == 7


def test_statgroup_as_dict_sorted():
    g = StatGroup("g")
    g.inc("b", 2)
    g.inc("a", 1)
    assert list(g.as_dict()) == ["a", "b"]


def test_statgroup_merge():
    g1 = StatGroup("g1")
    g2 = StatGroup("g2")
    g1.inc("x", 1)
    g2.inc("x", 2)
    g2.inc("y", 3)
    g2.histogram("h").add(5)
    g1.merge(g2)
    assert g1.get("x") == 3
    assert g1.get("y") == 3
    assert g1.histogram("h").count == 1


def test_statgroup_merge_histograms_both_sides():
    # merge must combine overlapping buckets, preserve weights, and keep
    # moments/percentiles consistent with feeding one histogram directly
    g1 = StatGroup("g1")
    g2 = StatGroup("g2")
    for v in (10, 10, 20, 30):
        g1.histogram("lat").add(v)
    g1.histogram("only_left").add(1)
    for v in (20, 40):
        g2.histogram("lat").add(v)
    g2.histogram("lat").add(40, weight=2)
    g2.histogram("only_right").add(7)
    g1.merge(g2)
    merged = g1.histogram("lat")
    reference = Histogram("ref")
    for v in (10, 10, 20, 30, 20, 40, 40, 40):
        reference.add(v)
    assert merged.count == reference.count == 8
    assert merged.total == reference.total
    assert merged.items() == reference.items()
    assert merged.mean == pytest.approx(reference.mean)
    for p in (0.5, 0.95, 0.99):
        assert merged.percentile(p) == reference.percentile(p)
    assert merged.min_seen == 10 and merged.max_seen == 40
    assert g1.histogram("only_left").count == 1
    assert g1.histogram("only_right").count == 1
    # the source group is untouched
    assert g2.histogram("lat").count == 4


def test_statgroup_merge_is_commutative_on_buckets():
    a, b = StatGroup("a"), StatGroup("b")
    for v in (1, 2, 2):
        a.histogram("h").add(v)
    for v in (2, 3):
        b.histogram("h").add(v)
    ab, ba = StatGroup("ab"), StatGroup("ba")
    ab.merge(a), ab.merge(b)
    ba.merge(b), ba.merge(a)
    assert ab.histogram("h").items() == ba.histogram("h").items()
    assert ab.histogram("h").total == ba.histogram("h").total


def test_stats_scope_restores_level():
    base = stats_level()
    with stats_scope(STATS_OFF):
        assert stats_level() == STATS_OFF
    assert stats_level() == base


def test_stats_scope_nesting():
    base = stats_level()
    with stats_scope(STATS_COUNTERS):
        assert stats_level() == STATS_COUNTERS
        with stats_scope(STATS_OFF):
            assert stats_level() == STATS_OFF
            with stats_scope(STATS_FULL):
                assert stats_level() == STATS_FULL
            assert stats_level() == STATS_OFF
        assert stats_level() == STATS_COUNTERS
    assert stats_level() == base


def test_stats_scope_restores_on_exception():
    base = stats_level()
    with pytest.raises(RuntimeError):
        with stats_scope(STATS_OFF):
            raise RuntimeError("boom")
    assert stats_level() == base


def test_stats_scope_rejects_bad_level():
    with pytest.raises(ValueError):
        with stats_scope(9):
            pass  # pragma: no cover


def test_statgroup_reset():
    g = StatGroup("g")
    g.inc("x", 5)
    g.histogram("h").add(1)
    g.reset()
    assert g.get("x") == 0
    assert not g.histograms


def test_geomean_simple():
    assert geomean([2, 8]) == pytest.approx(4.0)


def test_geomean_empty_is_zero():
    assert geomean([]) == 0.0


def test_geomean_rejects_nonpositive():
    with pytest.raises(ValueError):
        geomean([1.0, 0.0])


@given(st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=1,
                max_size=20))
def test_geomean_between_min_and_max(values):
    g = geomean(values)
    assert min(values) - 1e-9 <= g <= max(values) + 1e-9


@given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1,
                max_size=200))
def test_histogram_mean_matches_python_mean(values):
    h = Histogram("x")
    for v in values:
        h.add(v)
    assert h.mean == pytest.approx(sum(values) / len(values))
    assert h.min_seen == min(values)
    assert h.max_seen == max(values)
