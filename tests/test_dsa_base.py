"""Tests for shared DSA infrastructure (RunResult, RequestPump)."""

import pytest

from repro.dsa import RequestPump, RunResult
from repro.sim import Simulator


def make_result(cycles=100, **kw):
    defaults = dict(dsa="x", variant="xcache", cycles=cycles, dram_reads=10,
                    dram_writes=2, onchip_accesses=50, hits=8, misses=2,
                    requests=10)
    defaults.update(kw)
    return RunResult(**defaults)


def test_run_result_derived_metrics():
    r = make_result()
    assert r.dram_accesses == 12
    assert r.hit_rate == pytest.approx(0.8)


def test_hit_rate_no_accesses():
    r = make_result(hits=0, misses=0)
    assert r.hit_rate == 0.0


def test_speedup_over():
    fast = make_result(cycles=100)
    slow = make_result(cycles=250)
    assert fast.speedup_over(slow) == pytest.approx(2.5)
    assert slow.speedup_over(fast) == pytest.approx(0.4)


def test_speedup_zero_cycles():
    assert make_result(cycles=0).speedup_over(make_result()) == 0.0


def test_row_serialization():
    row = make_result().row()
    assert row == {"dsa": "x", "variant": "xcache", "cycles": 100,
                   "dram": 12, "onchip": 50, "hit_rate": 0.8, "ok": True}


def test_pump_window_limits_outstanding():
    sim = Simulator()
    issued = []
    pump = RequestPump(sim, total=10, issue_fn=issued.append, window=3)
    pump.start()
    assert issued == [0, 1, 2]
    pump.complete()
    assert issued == [0, 1, 2, 3]


def test_pump_completion_callback():
    sim = Simulator()
    done = []
    pump = RequestPump(sim, total=2, issue_fn=lambda i: None, window=4,
                       on_done=lambda: done.append(True))
    pump.start()
    pump.complete()
    assert not pump.done
    pump.complete()
    assert pump.done and done == [True]


def test_pump_empty_trace_fires_done():
    sim = Simulator()
    done = []
    pump = RequestPump(sim, total=0, issue_fn=lambda i: None,
                       on_done=lambda: done.append(True))
    pump.start()
    sim.run()
    assert done == [True]


def test_pump_window_validation():
    with pytest.raises(ValueError):
        RequestPump(Simulator(), total=1, issue_fn=lambda i: None, window=0)


def test_pump_issues_in_order():
    sim = Simulator()
    issued = []
    pump = RequestPump(sim, total=5, issue_fn=issued.append, window=1)
    pump.start()
    for _ in range(4):
        pump.complete()
    assert issued == [0, 1, 2, 3, 4]
