"""Tests for obs processors: typed dispatch, metrics, the legacy bridge."""

import io

import pytest

from repro.obs import (
    EventBus,
    Fill,
    Hit,
    Merge,
    MetricsProcessor,
    Miss,
    ProgressProcessor,
    TypedEventProcessor,
    WalkerDispatch,
    WalkerRetire,
    WalkerWake,
    summarize_metrics,
)
from repro.obs.processors import LegacyTraceProcessor
from repro.sim import Tracer
from repro.sim.stats import Histogram, StatGroup


def _hit(cycle=1, **kw):
    kw.setdefault("tag", (1,))
    return Hit(cycle=cycle, component="ctl", **kw)


# ----------------------------------------------------------------------
# TypedEventProcessor
# ----------------------------------------------------------------------
class _HitsOnly(TypedEventProcessor):
    def __init__(self):
        super().__init__()
        self.hits = []
        self.retires = []

    def on_hit(self, ev):
        self.hits.append(ev)

    def on_walker_retire(self, ev):
        self.retires.append(ev)


def test_typed_processor_subscribes_only_handled_types():
    p = _HitsOnly()
    assert set(p.subscriptions()) == {Hit, WalkerRetire}


def test_typed_processor_dispatches_by_class():
    bus = EventBus()
    p = bus.attach(_HitsOnly())
    bus.publish(_hit())
    bus.publish(Miss(cycle=2, component="ctl", tag=(1,), op="MetaLoad"))
    bus.publish(WalkerRetire(cycle=9, component="ctl", tag=(1,),
                             found=True, lifetime=7))
    assert len(p.hits) == 1 and len(p.retires) == 1


def test_typed_processor_with_no_handlers_subscribes_nothing():
    class Empty(TypedEventProcessor):
        pass

    bus = EventBus()
    bus.attach(Empty())
    assert bus.subscriber_count == 0


# ----------------------------------------------------------------------
# MetricsProcessor
# ----------------------------------------------------------------------
def _feed_metrics(metrics):
    bus = EventBus()
    bus.attach(metrics)
    from repro.obs import DRAMIssue, QueueStall, RequestArrive

    for i in range(4):
        bus.publish(RequestArrive(cycle=i, component="ctl",
                                  tag=(i,), op="load"))
    bus.publish(_hit(load_to_use=3))
    bus.publish(_hit(load_to_use=5))
    bus.publish(_hit(store=True, load_to_use=4))
    bus.publish(Miss(cycle=4, component="ctl", tag=(9,), op="MetaLoad"))
    bus.publish(Merge(cycle=5, component="ctl", tag=(9,)))
    bus.publish(WalkerRetire(cycle=104, component="ctl", tag=(9,),
                             found=True, lifetime=100))
    bus.publish(DRAMIssue(cycle=10, component="dram", addr=64,
                          is_write=False, bank=1, row_result="row_hits",
                          complete_at=25))
    bus.publish(QueueStall(cycle=11, component="ctl", tag=(9,),
                           reason="no_context"))
    return metrics


def test_metrics_processor_counts_and_histograms():
    m = _feed_metrics(MetricsProcessor())
    assert m.stats.get("requests") == 4
    assert m.stats.get("hits") == 2
    assert m.stats.get("store_hits") == 1
    assert m.stats.get("misses") == 1
    assert m.stats.get("merges") == 1
    assert m.stats.get("walks_completed") == 1
    assert m.stats.get("dram_reads") == 1
    assert m.stats.get("stalls") == 1
    assert m.hit_rate() == 3 / 4
    assert m.stats.histogram("load_to_use").count == 3
    assert m.stats.histogram("miss_latency").percentile(0.5) == 100
    assert m.stats.histogram("dram_latency").mean == 15.0


def test_metrics_summary_text():
    text = _feed_metrics(MetricsProcessor()).summary()
    assert "hit-rate=0.7500" in text
    assert "miss-latency" in text and "p95=100" in text
    assert "load-to-use" in text and "p50=" in text


def test_empty_histogram_renders_placeholder_not_zeros():
    """Regression: an all-hits (or empty) run has no miss-latency
    samples; the summary must say so instead of printing fake zeros."""
    text = summarize_metrics(StatGroup("empty"))
    assert "miss-latency: (no samples)" in text
    assert "load-to-use: (no samples)" in text
    assert "hit-rate=0.0000" in text
    # populated histograms still render percentiles
    populated = _feed_metrics(MetricsProcessor()).summary()
    assert "(no samples)" not in populated


def test_empty_histogram_percentile_contract():
    h = Histogram("empty")
    assert h.count == 0
    assert h.percentile(0.5) == 0
    assert h.percentile(1.0) == 0
    # range validation applies even with no samples
    with pytest.raises(ValueError):
        h.percentile(1.5)
    with pytest.raises(ValueError):
        h.percentile(-0.1)


def test_metrics_groups_merge_across_runs():
    a = _feed_metrics(MetricsProcessor())
    b = _feed_metrics(MetricsProcessor())
    total = StatGroup("merged")
    total.merge(a.stats)
    total.merge(b.stats)
    assert total.get("requests") == 8
    assert total.histogram("load_to_use").count == 6
    assert total.histogram("miss_latency").percentile(0.99) == 100


# ----------------------------------------------------------------------
# ProgressProcessor
# ----------------------------------------------------------------------
def test_progress_processor_heartbeats():
    out = io.StringIO()
    p = ProgressProcessor(interval=2, stream=out)
    bus = EventBus()
    bus.attach(p)
    for i in range(5):
        bus.publish(_hit(cycle=i))
    bus.close()
    lines = out.getvalue().strip().splitlines()
    assert len(lines) == 2
    assert "2 events" in lines[0] and "4 events" in lines[1]


# ----------------------------------------------------------------------
# LegacyTraceProcessor: digest-identical to inline emits
# ----------------------------------------------------------------------
def test_legacy_bridge_matches_inline_emits():
    inline = Tracer()
    inline.emit(1, "ctl", "walk_start", tag=(7,), event="MetaLoad")
    inline.emit(1, "ctl", "dispatch", tag=(7,), routine="Default@MetaLoad")
    inline.emit(40, "ctl", "fill", tag=(7,), addr=4096)
    inline.emit(41, "ctl", "retire", tag=(7,), found=True, lifetime=40)
    inline.emit(50, "ctl", "hit", tag=(7,), take=False)
    inline.emit(51, "ctl", "store_hit", tag=(7,))
    inline.emit(52, "ctl", "merge", tag=(7,))

    bridged = Tracer()
    bus = EventBus()
    bus.attach(LegacyTraceProcessor(bridged))
    bus.publish(Miss(cycle=1, component="ctl", tag=(7,), op="MetaLoad"))
    bus.publish(WalkerDispatch(cycle=1, component="ctl", tag=(7,),
                               routine="Default@MetaLoad"))
    bus.publish(Fill(cycle=40, component="ctl", tag=(7,), addr=4096,
                     nbytes=64))
    bus.publish(WalkerRetire(cycle=41, component="ctl", tag=(7,),
                             found=True, lifetime=40))
    bus.publish(Hit(cycle=50, component="ctl", tag=(7,)))
    bus.publish(Hit(cycle=51, component="ctl", tag=(7,), store=True))
    bus.publish(Merge(cycle=52, component="ctl", tag=(7,)))

    assert bridged.digest() == inline.digest()


def test_legacy_bridge_ignores_non_legacy_events():
    tracer = Tracer()
    bus = EventBus()
    bus.attach(LegacyTraceProcessor(tracer))
    bus.publish(WalkerWake(cycle=3, component="ctl", tag=(7,),
                           reason="Fill"))
    assert len(tracer) == 0
    assert tracer.total_emitted == 0


# ----------------------------------------------------------------------
# system integration: observe() + legacy tracer coexist
# ----------------------------------------------------------------------
def test_observe_and_tracer_share_one_bus(mini_system):
    tracer = Tracer()
    mini_system.controller.tracer = tracer
    metrics = mini_system.observe(MetricsProcessor())
    addr = mini_system.image.alloc_u64_array([1])
    mini_system.load((1,), walk_fields={"addr": addr})
    mini_system.run()
    mini_system.load((1,), walk_fields={"addr": addr})
    mini_system.run()
    assert tracer.count("hit") == 1 and tracer.count("retire") == 1
    assert metrics.stats.get("hits") == 1
    assert metrics.stats.get("misses") == 1
    assert metrics.stats.get("walks_completed") == 1
    assert metrics.stats.histogram("miss_latency").count == 1
    assert metrics.stats.get("dram_reads") == 1


def test_tracer_swap_detaches_old_bridge(mini_system):
    first, second = Tracer(), Tracer()
    mini_system.controller.tracer = first
    mini_system.controller.tracer = second
    addr = mini_system.image.alloc_u64_array([1])
    mini_system.load((1,), walk_fields={"addr": addr})
    mini_system.run()
    assert len(first) == 0
    assert second.count("walk_start") == 1
    mini_system.controller.tracer = None
    assert mini_system.controller.tracer is None
    mini_system.load((2,), walk_fields={"addr": addr})
    mini_system.run()
    assert second.count("walk_start") == 1  # detached, saw nothing new
