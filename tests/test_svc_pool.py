"""Worker pool: crash detection/replacement, deterministic crash-retry
with byte-identical results, and the warm-pool speedup that justifies
keeping workers alive."""

import time

import pytest

from repro.svc.jobs import JobSpec, JobState
from repro.svc.pool import CRASH_ONCE_ENV, WorkerPool
from repro.svc.service import Service


def _wait_state(job, state, timeout=30.0):
    deadline = time.monotonic() + timeout
    while job.state is not state:
        if time.monotonic() > deadline:
            raise TimeoutError(f"job never reached {state}: {job.status()}")
        time.sleep(0.01)


# ----------------------------------------------------------------------
# bare pool mechanics
# ----------------------------------------------------------------------

def test_pool_boots_and_reports_health():
    pool = WorkerPool(workers=2, health=False)
    pool.start()
    try:
        pool.wait_ready(timeout=60)
        health = pool.health()
        assert len(health) == 2
        assert all(h["state"] == "idle" for h in health)
        assert len(pool.idle_workers()) == 2
    finally:
        pool.stop()
    assert len(pool) == 0


def test_kill_respawns_the_slot():
    pool = WorkerPool(workers=1, health=False)
    pool.start()
    try:
        pool.wait_ready(timeout=60)
        victim = pool.idle_workers()[0]
        pool.kill(victim)
        assert pool.restarts == 1
        assert len(pool) == 1
        replacement = pool._slots[0]
        assert replacement.id != victim.id
        # a kill never surfaces as a "died" message
        deadline = time.monotonic() + 60
        while not replacement.ready:
            assert time.monotonic() < deadline
            assert all(kind != "died" for kind, *_ in pool.poll(0.05))
    finally:
        pool.stop()


# ----------------------------------------------------------------------
# crash mid-job: retry on a fresh worker, byte-identical result
# ----------------------------------------------------------------------

def test_worker_crash_mid_job_retries_with_identical_result(
        tmp_path, monkeypatch):
    marker = tmp_path / "crash-once"
    spec = JobSpec(experiment="tab01", profile="ci")

    # reference run, no fault injection
    monkeypatch.delenv(CRASH_ONCE_ENV, raising=False)
    with Service(workers=1, health=False) as svc:
        reference = svc.submit(spec)
        ref_payload = reference.result(timeout=120)
        ref_digest = reference.result_digest

    # faulted run: the first worker to pick the job up dies mid-job
    monkeypatch.setenv(CRASH_ONCE_ENV, str(marker))
    with Service(workers=1, health=False) as svc:
        job = svc.submit(spec)
        payload = job.result(timeout=120)
        assert marker.exists()              # the crash really happened
        assert job.attempts == 2            # dispatched, died, retried
        assert svc.pool.restarts == 1       # the slot was replaced
        assert svc.metrics()["retries"] == 1
        # the store recorded exactly one complete result, never a
        # partial one from the crashed attempt
        assert svc.store.stats.stores == 1
        stored = svc.store.get(job.digest)
        assert stored["rendered"] == payload["rendered"]

    # byte-identical to the undisturbed run
    assert payload["rendered"] == ref_payload["rendered"]
    assert payload["all_ok"] == ref_payload["all_ok"]
    assert job.result_digest == ref_digest


def test_repeated_crashes_fail_the_job(tmp_path, monkeypatch):
    """A job whose every attempt dies ends FAILED, not retried forever."""
    from repro.svc.jobs import JobFailed

    # a marker path that can never exist: the worker crashes every time
    marker = tmp_path / "no-such-dir" / "crash-always"
    monkeypatch.setenv(CRASH_ONCE_ENV, str(marker))
    with Service(workers=1, health=False, max_attempts=2) as svc:
        job = svc.submit(JobSpec(experiment="sleep:0.1"))
        with pytest.raises(JobFailed, match="died"):
            job.result(timeout=120)
        assert job.attempts == svc.max_attempts + 1
        assert svc.store.stats.stores == 0


# ----------------------------------------------------------------------
# warm pool: the second suite run in a worker reuses the in-process memo
# ----------------------------------------------------------------------

def test_warm_worker_speeds_up_repeat_suite_runs():
    """Satellite check for routing --parallel through the warm pool:
    a long-lived worker's second suite job hits its in-process memo."""
    spec = JobSpec(experiment="suite", profile="ci", workloads=("dasx",))
    with Service(workers=1, store=None, health=False) as svc:
        cold = svc.submit(spec).result(timeout=120)
        warm = svc.submit(spec).result(timeout=120)
    cold_meta, warm_meta = cold["metadata"], warm["metadata"]
    assert cold_meta["suite_warm"] is False
    assert warm_meta["suite_warm"] is True      # served from the memo
    assert warm["rendered"] == cold["rendered"]
    assert (cold_meta["duration_s"]
            / max(warm_meta["duration_s"], 1e-9) > 1.3)
    assert warm_meta["worker_jobs_before"] == 1  # same worker, second job
