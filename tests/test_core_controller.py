"""Integration-grade unit tests for the X-Cache controller pipeline."""

import pytest

from repro.core import (
    EV_FILL,
    EV_META_LOAD,
    EV_META_STORE,
    IMM,
    MSG,
    R,
    Transition,
    WalkerSpec,
    XCacheConfig,
    XCacheSystem,
    compile_walker,
    op,
)


def value_of(resp):
    return int.from_bytes(resp.data[:8], "little")


def test_miss_walks_and_returns_data(mini_system):
    addr = mini_system.image.alloc_u64_array([111])
    mini_system.load((1,), walk_fields={"addr": addr})
    responses = mini_system.run()
    assert len(responses) == 1
    assert responses[0].found
    assert value_of(responses[0]) == 111
    assert mini_system.controller.stats.get("misses") == 1


def test_second_access_hits(mini_system):
    addr = mini_system.image.alloc_u64_array([7])
    mini_system.load((1,), walk_fields={"addr": addr})
    mini_system.run()
    first_done = mini_system.responses[0].completed_at
    mini_system.load((1,), walk_fields={"addr": addr})
    mini_system.run()
    second = mini_system.responses[1]
    assert second.found and value_of(second) == 7
    assert mini_system.controller.stats.get("hits") == 1
    # hit latency is the configured 3-cycle load-to-use
    assert second.completed_at - second.request.issued_at == \
        mini_system.controller.config.hit_latency
    assert second.completed_at > first_done


def test_concurrent_same_tag_merges(mini_system):
    addr = mini_system.image.alloc_u64_array([5])
    mini_system.load((1,), walk_fields={"addr": addr})
    mini_system.load((1,), walk_fields={"addr": addr})
    mini_system.load((1,), walk_fields={"addr": addr})
    responses = mini_system.run()
    assert len(responses) == 3
    assert all(value_of(r) == 5 for r in responses)
    assert mini_system.controller.stats.get("misses") == 1
    assert mini_system.controller.stats.get("miss_merges") == 2
    assert mini_system.dram.stats.get("reads") == 1


def test_distinct_tags_walk_in_parallel(mini_system):
    addr = mini_system.image.alloc_u64_array([10, 20, 30])
    for i in range(3):
        mini_system.load((i,), walk_fields={"addr": addr + 8 * i})
    responses = mini_system.run()
    assert sorted(value_of(r) for r in responses) == [10, 20, 30]
    assert mini_system.controller.stats.get("walks_completed") == 3


def test_nowalk_miss_returns_not_found(mini_system):
    mini_system.load((42,), nowalk=True)
    responses = mini_system.run()
    assert not responses[0].found
    assert mini_system.controller.stats.get("nowalk_misses") == 1
    assert mini_system.controller.stats.get("walks_started") == 0


def test_take_invalidates_entry(mini_system):
    addr = mini_system.image.alloc_u64_array([9])
    mini_system.load((1,), walk_fields={"addr": addr})
    mini_system.run()
    mini_system.load((1,), take=True)
    mini_system.run()
    assert value_of(mini_system.responses[1]) == 9
    mini_system.load((1,), take=True)
    mini_system.run()
    assert not mini_system.responses[2].found


def test_preload_then_hit(mini_system):
    addr = mini_system.image.alloc_u64_array([13])
    mini_system.load((1,), walk_fields={"addr": addr}, preload=True)
    mini_system.run()
    assert mini_system.responses[0].found
    assert mini_system.responses[0].data == b""  # ack only
    mini_system.load((1,))
    mini_system.run()
    assert value_of(mini_system.responses[1]) == 13


def test_context_exhaustion_backpressures(mini_walker):
    config = XCacheConfig(ways=8, sets=8, data_sectors=128, num_active=1,
                          num_exe=2, xregs_per_walker=8)
    system = XCacheSystem(config, mini_walker)
    addr = system.image.alloc_u64_array(list(range(6)))
    for i in range(6):
        system.load((i,), walk_fields={"addr": addr + 8 * i})
    responses = system.run()
    assert len(responses) == 6
    assert system.controller.stats.get("stall_no_context") > 0
    assert sorted(value_of(r) for r in responses) == list(range(6))


def test_set_conflict_stalls_until_walker_retires(mini_walker):
    # direct-mapped, 1 set: two concurrent misses to the same set
    config = XCacheConfig(ways=1, sets=1, data_sectors=64, num_active=4,
                          num_exe=2, xregs_per_walker=8)
    system = XCacheSystem(config, mini_walker)
    addr = system.image.alloc_u64_array([1, 2])
    system.load((0,), walk_fields={"addr": addr})
    system.load((1,), walk_fields={"addr": addr + 8})
    responses = system.run()
    assert len(responses) == 2
    assert all(r.found for r in responses)
    assert system.controller.stats.get("stall_set_conflict") > 0


def test_per_tag_order_preserved_with_store_then_take(mini_walker):
    """A take must never overtake an earlier store to the same tag."""
    from repro.dsa.walkers import build_event_walker
    import struct
    config = XCacheConfig(ways=1, sets=16, data_sectors=64, num_active=4,
                          tag_fields=("vertex",), wlen=1)
    system = XCacheSystem(config, build_event_walker(), store_merge="fadd")
    payload = struct.unpack("<Q", struct.pack("<d", 2.5))[0]
    system.store((3,), payload)
    system.load((3,), take=True)
    responses = system.run()
    take_resp = [r for r in responses if r.request.fields.get("take")][0]
    assert take_resp.found
    assert struct.unpack("<d", take_resp.data[:8])[0] == 2.5


def test_store_merges_on_hit():
    from repro.dsa.walkers import build_event_walker
    import struct
    config = XCacheConfig(ways=1, sets=16, data_sectors=64,
                          tag_fields=("vertex",), wlen=1)
    system = XCacheSystem(config, build_event_walker(), store_merge="fadd")

    def bits(x):
        return struct.unpack("<Q", struct.pack("<d", x))[0]

    system.store((1,), bits(1.0))
    system.run()
    system.store((1,), bits(0.5))
    system.run()
    system.load((1,), take=True)
    system.run()
    resp = system.responses[-1]
    assert struct.unpack("<d", resp.data[:8])[0] == pytest.approx(1.5)
    assert system.controller.stats.get("merge_ops") == 1


def test_warm_preloads_entry(mini_system):
    assert mini_system.controller.warm((5,), (123).to_bytes(8, "little"))
    mini_system.load((5,))
    mini_system.run()
    assert value_of(mini_system.responses[0]) == 123
    assert mini_system.controller.stats.get("misses") == 0


def test_capacity_eviction_reclaims_sectors(mini_walker):
    config = XCacheConfig(ways=8, sets=8, data_sectors=4, num_active=2,
                          num_exe=2, xregs_per_walker=8)
    system = XCacheSystem(config, mini_walker)
    addr = system.image.alloc_u64_array(list(range(8)))
    for i in range(8):
        system.load((i,), walk_fields={"addr": addr + 8 * i})
    responses = system.run()
    assert len(responses) == 8
    assert all(r.found for r in responses)
    assert system.controller.stats.get("capacity_evictions") > 0


def test_hit_rate_accounting(mini_system):
    addr = mini_system.image.alloc_u64_array([1])
    mini_system.load((1,), walk_fields={"addr": addr})
    mini_system.run()
    mini_system.load((1,))
    mini_system.run()
    assert mini_system.hit_rate() == pytest.approx(0.5)


def test_drain_complete(mini_system):
    addr = mini_system.image.alloc_u64_array([1])
    mini_system.load((1,), walk_fields={"addr": addr})
    assert not mini_system.controller.drain_complete()
    mini_system.run()
    assert mini_system.controller.drain_complete()


def test_load_to_use_histogram(mini_system):
    addr = mini_system.image.alloc_u64_array([1])
    mini_system.load((1,), walk_fields={"addr": addr})
    mini_system.run()
    mini_system.load((1,))
    mini_system.run()
    hist = mini_system.controller.stats.histogram("load_to_use")
    assert hist.count == 2
    assert hist.min_seen == mini_system.controller.config.hit_latency


def test_summary_keys(mini_system):
    addr = mini_system.image.alloc_u64_array([1])
    mini_system.load((1,), walk_fields={"addr": addr})
    mini_system.run()
    summary = mini_system.summary()
    for key in ("cycles", "meta_loads", "hits", "misses", "dram_reads",
                "actions"):
        assert key in summary
    assert summary["meta_loads"] == 1


def test_eviction_frees_victim_sectors(mini_walker):
    """Regression: LRU eviction inside ALLOCM must not leak the victim's
    data-RAM sectors (found by the hierarchy ablation bench)."""
    from repro.core import XCacheConfig, XCacheSystem
    config = XCacheConfig(ways=1, sets=2, data_sectors=8, num_active=2,
                          num_exe=2, xregs_per_walker=8)
    system = XCacheSystem(config, mini_walker)
    addr = system.image.alloc_u64_array(list(range(64)))
    # 32x more distinct tags than sectors: without the orphan-free path
    # the data RAM exhausts after 8 evictions.
    for i in range(64):
        system.load((i,), walk_fields={"addr": addr + 8 * i})
        system.run()
    assert all(r.found for r in system.responses)
    ram = system.controller.dataram
    assert ram.used_sectors <= config.entries
    assert system.controller.metatags.stats.get("evictions") > 50
