"""Per-opcode semantics tests, driven through tiny walker programs."""

import pytest

from repro.core import (
    EV_FILL,
    EV_META_LOAD,
    IMM,
    MSG,
    R,
    Transition,
    WalkerSpec,
    XCacheConfig,
    XCacheSystem,
    compile_walker,
    op,
)
from repro.core.actions import ActionError


def run_alu_program(actions, fields=None, result_reg=0):
    """Run a Default-state routine then expose R<result_reg> via data RAM."""
    tail = (
        op.allocD(R(14), IMM(1)),
        op.write(R(14), R(result_reg)),
        op.update("sector_start", R(14)),
        op.addi(R(15), R(14), 1),
        op.update("sector_end", R(15)),
        op.finish(),
    )
    spec = WalkerSpec("alu", (
        Transition("Default", EV_META_LOAD, (op.allocM(),) + tuple(actions)
                   + tail),
    ))
    config = XCacheConfig(ways=2, sets=4, data_sectors=32, num_exe=4,
                          xregs_per_walker=16)
    system = XCacheSystem(config, compile_walker(spec))
    system.load((1,), walk_fields=fields or {})
    responses = system.run()
    assert responses[0].found
    return int.from_bytes(responses[0].data[:8], "little"), system


@pytest.mark.parametrize("build,expected", [
    (lambda: [op.mov(R(0), IMM(5)), op.addi(R(0), R(0), 3)], 8),
    (lambda: [op.mov(R(1), IMM(6)), op.mov(R(2), IMM(7)),
              op.add(R(0), R(1), R(2))], 13),
    (lambda: [op.mov(R(1), IMM(0b1100)), op.and_(R(0), R(1), IMM(0b1010))],
     0b1000),
    (lambda: [op.mov(R(1), IMM(0b1100)), op.or_(R(0), R(1), IMM(0b0011))],
     0b1111),
    (lambda: [op.mov(R(1), IMM(0b1100)), op.xor(R(0), R(1), IMM(0b1010))],
     0b0110),
    (lambda: [op.mov(R(0), IMM(3)), op.shl(R(0), R(0), IMM(4))], 48),
    (lambda: [op.mov(R(0), IMM(48)), op.shr(R(0), R(0), IMM(4))], 3),
    (lambda: [op.mov(R(0), IMM(48)), op.srl(R(0), R(0), IMM(4))], 3),
    (lambda: [op.mov(R(0), IMM(9)), op.inc(R(0))], 10),
    (lambda: [op.mov(R(0), IMM(9)), op.dec(R(0))], 8),
    (lambda: [op.mov(R(1), IMM(0)), op.not_(R(0), R(1))], (1 << 64) - 1),
])
def test_agen_semantics(build, expected):
    value, _system = run_alu_program(build())
    assert value == expected


def test_sra_sign_extends():
    neg = (1 << 64) - 16  # -16 in two's complement
    value, _ = run_alu_program(
        [op.mov(R(1), IMM(neg)), op.sra(R(0), R(1), IMM(2))])
    assert value == (1 << 64) - 4  # -4


def test_msg_operand_resolution():
    value, _ = run_alu_program([op.mov(R(0), MSG("payload_in"))],
                               fields={"payload_in": 321})
    assert value == 321


def test_missing_msg_field_raises():
    with pytest.raises(KeyError):
        run_alu_program([op.mov(R(0), MSG("nope"))])


def test_beq_taken_and_not_taken():
    value, _ = run_alu_program([
        op.mov(R(0), IMM(1)),
        op.beq(R(0), IMM(1), "skip"),
        op.mov(R(0), IMM(99)),
        op.lbl("skip"),
    ])
    assert value == 1
    value, _ = run_alu_program([
        op.mov(R(0), IMM(2)),
        op.beq(R(0), IMM(1), "skip"),
        op.mov(R(0), IMM(99)),
        op.lbl("skip"),
    ])
    assert value == 99


@pytest.mark.parametrize("branch,a,expected_skip", [
    (lambda t: op.bnz(R(1), t), 1, True),
    (lambda t: op.bnz(R(1), t), 0, False),
    (lambda t: op.blt(R(1), IMM(5), t), 3, True),
    (lambda t: op.blt(R(1), IMM(5), t), 7, False),
    (lambda t: op.bge(R(1), IMM(5), t), 5, True),
    (lambda t: op.bge(R(1), IMM(5), t), 4, False),
    (lambda t: op.ble(R(1), IMM(5), t), 5, True),
    (lambda t: op.ble(R(1), IMM(5), t), 6, False),
])
def test_conditional_branches(branch, a, expected_skip):
    value, _ = run_alu_program([
        op.mov(R(1), IMM(a)),
        op.mov(R(0), IMM(1)),
        branch("skip"),
        op.mov(R(0), IMM(99)),
        op.lbl("skip"),
    ])
    assert value == (1 if expected_skip else 99)


def test_jmp_unconditional():
    value, _ = run_alu_program([
        op.mov(R(0), IMM(7)),
        op.jmp("skip"),
        op.mov(R(0), IMM(99)),
        op.lbl("skip"),
    ])
    assert value == 7


def test_branch_counted_in_stats():
    _value, system = run_alu_program([
        op.mov(R(0), IMM(1)),
        op.beq(R(0), IMM(1), "skip"),
        op.mov(R(0), IMM(9)),
        op.lbl("skip"),
    ])
    assert system.controller.stats.get("branches") == 1
    assert system.controller.stats.get("branches_taken") == 1


def test_bhit_bmiss_probe_metatags():
    # tag (1,) is the walker's own tag (allocated); probing it hits.
    value, _ = run_alu_program([
        op.mov(R(0), IMM(0)),
        op.bhit(IMM(1), "hit"),
        op.mov(R(0), IMM(99)),
        op.lbl("hit"),
    ])
    assert value == 0
    value, _ = run_alu_program([
        op.mov(R(0), IMM(0)),
        op.bmiss(IMM(77), "miss"),
        op.mov(R(0), IMM(99)),
        op.lbl("miss"),
    ])
    assert value == 0


def test_enq_self_carries_fields():
    spec = WalkerSpec("selfmsg", (
        Transition("Default", EV_META_LOAD, (
            op.allocM(),
            op.mov(R(1), IMM(55)),
            op.enq_self("Poked", delay=3, val=R(1)),
            op.state("Waiting"),
        )),
        Transition("Waiting", "Poked", (
            op.mov(R(0), MSG("val")),
            op.allocD(R(14), IMM(1)),
            op.write(R(14), R(0)),
            op.update("sector_start", R(14)),
            op.addi(R(15), R(14), 1),
            op.update("sector_end", R(15)),
            op.finish(),
        )),
    ))
    system = XCacheSystem(XCacheConfig(ways=2, sets=4, data_sectors=16, xregs_per_walker=16),
                          compile_walker(spec))
    system.load((1,))
    responses = system.run()
    assert int.from_bytes(responses[0].data[:8], "little") == 55


def test_enq_self_hash_fields():
    from repro.data.hashindex import fnv1a64
    spec = WalkerSpec("hash", (
        Transition("Default", EV_META_LOAD, (
            op.allocM(),
            op.mov(R(1), IMM(1234)),
            op.enq_self("Hashed", delay=10, hash_fields={"h": R(1)}),
            op.state("Waiting"),
        )),
        Transition("Waiting", "Hashed", (
            op.mov(R(0), MSG("h")),
            op.allocD(R(14), IMM(1)),
            op.write(R(14), R(0)),
            op.update("sector_start", R(14)),
            op.addi(R(15), R(14), 1),
            op.update("sector_end", R(15)),
            op.finish(),
        )),
    ))
    system = XCacheSystem(XCacheConfig(ways=2, sets=4, data_sectors=16, xregs_per_walker=16),
                          compile_walker(spec))
    system.load((1,))
    responses = system.run()
    assert int.from_bytes(responses[0].data[:8], "little") == fnv1a64(1234)
    assert system.controller.stats.get("hash_ops") == 1
    assert system.controller.stats.get("hash_cycles") == 10


def test_peek_extracts_fill_bytes(mini_system):
    addr = mini_system.image.alloc_u64_array([0xCAFEBABE])
    mini_system.load((1,), walk_fields={"addr": addr})
    responses = mini_system.run()
    assert int.from_bytes(responses[0].data[:8], "little") == 0xCAFEBABE


def test_peek_beyond_payload_raises():
    spec = WalkerSpec("bad-peek", (
        Transition("Default", EV_META_LOAD, (
            op.allocM(),
            op.enq_dram(addr=IMM(64)),
            op.state("Wait"),
        )),
        Transition("Wait", EV_FILL, (
            op.peek(R(0), IMM(100)),  # offset beyond the 64B block
            op.finish(),
        )),
    ))
    system = XCacheSystem(XCacheConfig(ways=2, sets=4, data_sectors=16, xregs_per_walker=16),
                          compile_walker(spec))
    system.load((1,))
    with pytest.raises(ActionError):
        system.run()


def test_dealloc_m_means_not_found():
    spec = WalkerSpec("notfound", (
        Transition("Default", EV_META_LOAD, (
            op.allocM(),
            op.deallocM(),
        )),
    ))
    system = XCacheSystem(XCacheConfig(ways=2, sets=4, data_sectors=16, xregs_per_walker=16),
                          compile_walker(spec))
    system.load((9,))
    responses = system.run()
    assert not responses[0].found
    # entry must be gone: a repeat miss walks again
    system.load((9,))
    system.run()
    assert system.controller.stats.get("misses") == 2


def test_write_multisector_from_msg_cost_scales():
    spec = WalkerSpec("bigcopy", (
        Transition("Default", EV_META_LOAD, (
            op.allocM(),
            op.enq_dram(addr=IMM(64)),
            op.state("Wait"),
        )),
        Transition("Wait", EV_FILL, (
            op.allocD(R(1), IMM(8)),
            op.write(R(1), IMM(0), nbytes=64, from_msg=True),
            op.update("sector_start", R(1)),
            op.addi(R(2), R(1), 8),
            op.update("sector_end", R(2)),
            op.finish(),
        )),
    ))
    config = XCacheConfig(ways=2, sets=4, data_sectors=32, wlen=4,
                          xregs_per_walker=16)
    system = XCacheSystem(config, compile_walker(spec))
    system.image.write_block(64, bytes(range(64)))
    system.load((1,))
    responses = system.run()
    assert responses[0].data == bytes(range(64))


def test_deallocd_frees_sectors():
    spec = WalkerSpec("freeing", (
        Transition("Default", EV_META_LOAD, (
            op.allocM(),
            op.allocD(R(1), IMM(4)),
            op.deallocD(R(1), IMM(4)),
            op.allocD(R(2), IMM(1)),
            op.mov(R(0), IMM(1)),
            op.write(R(2), R(0)),
            op.update("sector_start", R(2)),
            op.addi(R(3), R(2), 1),
            op.update("sector_end", R(3)),
            op.finish(),
        )),
    ))
    system = XCacheSystem(XCacheConfig(ways=2, sets=4, data_sectors=8, xregs_per_walker=16),
                          compile_walker(spec))
    system.load((1,))
    system.run()
    # 4 sectors were freed; only the 1-sector payload remains
    assert system.controller.dataram.used_sectors == 1


def test_read_data_action():
    spec = WalkerSpec("readback", (
        Transition("Default", EV_META_LOAD, (
            op.allocM(),
            op.allocD(R(1), IMM(1)),
            op.mov(R(2), IMM(444)),
            op.write_data(R(1), R(2)),
            op.read_data(R(0), R(1)),
            op.allocD(R(14), IMM(1)),
            op.write(R(14), R(0)),
            op.update("sector_start", R(14)),
            op.addi(R(15), R(14), 1),
            op.update("sector_end", R(15)),
            op.finish(),
        )),
    ))
    system = XCacheSystem(XCacheConfig(ways=2, sets=4, data_sectors=16, xregs_per_walker=16),
                          compile_walker(spec))
    system.load((1,))
    responses = system.run()
    assert int.from_bytes(responses[0].data[:8], "little") == 444


def test_action_category_stats_accumulate(mini_system):
    addr = mini_system.image.alloc_u64_array([1])
    mini_system.load((1,), walk_fields={"addr": addr})
    mini_system.run()
    stats = mini_system.controller.stats
    assert stats.get("act_agen") > 0
    assert stats.get("act_meta") > 0
    assert stats.get("act_queue") > 0
    assert stats.get("act_data") > 0
    assert stats.get("ucode_reads") == stats.get("actions_total")
