"""Job model: digests, state machine, priority queue, bounded admission."""

import pytest

from repro.svc.jobs import (
    AdmissionBusy,
    Job,
    JobCancelled,
    JobFailed,
    JobQueue,
    JobSpec,
    JobState,
)


# ----------------------------------------------------------------------
# spec digests
# ----------------------------------------------------------------------

def test_scheduling_hints_do_not_change_the_digest():
    base = JobSpec(experiment="fig04", profile="ci")
    hinted = JobSpec(experiment="fig04", profile="ci", priority=9,
                     stream_interval=100, tag="nightly")
    assert base.digest() == hinted.digest()


def test_result_determining_fields_change_the_digest():
    base = JobSpec(experiment="fig04", profile="ci")
    assert base.digest() != JobSpec(experiment="fig07",
                                    profile="ci").digest()
    assert base.digest() != JobSpec(experiment="fig04",
                                    profile="quick").digest()
    assert base.digest() != JobSpec(
        experiment="fig04", profile="ci",
        profile_overrides=(("widx_skew", 1.2),)).digest()


def test_override_container_spelling_is_normalized():
    a = JobSpec(experiment="fig04",
                profile_overrides=[("widx_skew", 1.2)])  # list of pairs
    b = JobSpec(experiment="fig04",
                profile_overrides=(("widx_skew", 1.2),))
    assert a == b and a.digest() == b.digest()


def test_synthetic_detection():
    assert JobSpec(experiment="sleep:0.5").is_synthetic
    assert JobSpec(experiment="suite").is_synthetic
    assert not JobSpec(experiment="fig04").is_synthetic


# ----------------------------------------------------------------------
# job results
# ----------------------------------------------------------------------

def _finish(job, state):
    job.state = state
    job._done.set()


def test_result_raises_by_terminal_state():
    ok = Job(JobSpec(experiment="sleep:0"))
    ok.result_payload = {"rendered": "r", "all_ok": True}
    _finish(ok, JobState.DONE)
    assert ok.result()["rendered"] == "r"

    failed = Job(JobSpec(experiment="sleep:0"))
    failed.error = "boom"
    _finish(failed, JobState.FAILED)
    with pytest.raises(JobFailed, match="boom"):
        failed.result()

    cancelled = Job(JobSpec(experiment="sleep:0"))
    _finish(cancelled, JobState.CANCELLED)
    with pytest.raises(JobCancelled):
        cancelled.result()


def test_result_timeout():
    job = Job(JobSpec(experiment="sleep:0"))
    with pytest.raises(TimeoutError):
        job.result(timeout=0.01)


# ----------------------------------------------------------------------
# queue
# ----------------------------------------------------------------------

def test_priority_order_with_fifo_ties():
    q = JobQueue()
    low = Job(JobSpec(experiment="sleep:0", priority=0))
    first_high = Job(JobSpec(experiment="sleep:1", priority=5))
    second_high = Job(JobSpec(experiment="sleep:2", priority=5))
    for job in (low, first_high, second_high):
        q.submit(job)
    assert q.pop() is first_high     # priority wins
    assert q.pop() is second_high    # ties pop in submission order
    assert q.pop() is low
    assert q.pop() is None


def test_bounded_admission_raises_with_retry_hint():
    q = JobQueue(max_pending=2)
    q.submit(Job(JobSpec(experiment="sleep:0")))
    q.submit(Job(JobSpec(experiment="sleep:1")))
    with pytest.raises(AdmissionBusy) as excinfo:
        q.submit(Job(JobSpec(experiment="sleep:2")), workers=2)
    assert excinfo.value.retry_after > 0
    assert excinfo.value.pending == 2


def test_pop_skips_cancelled_entries():
    q = JobQueue()
    doomed = Job(JobSpec(experiment="sleep:0"))
    kept = Job(JobSpec(experiment="sleep:1"))
    q.submit(doomed)
    q.submit(kept)
    doomed.state = JobState.CANCELLED
    q.forget_cancelled(doomed)
    assert q.pending == 1
    assert q.pop() is kept


def test_requeue_front_beats_every_priority():
    q = JobQueue()
    urgent = Job(JobSpec(experiment="sleep:0", priority=100))
    q.submit(urgent)
    retried = Job(JobSpec(experiment="sleep:1", priority=0))
    q.requeue_front(retried)
    assert q.pop() is retried


def test_retry_after_tracks_observed_durations():
    q = JobQueue(max_pending=1)
    for _ in range(20):
        q.note_duration(10.0)  # long jobs observed
    q.submit(Job(JobSpec(experiment="sleep:0")))
    with pytest.raises(AdmissionBusy) as excinfo:
        q.submit(Job(JobSpec(experiment="sleep:1")), workers=1)
    assert excinfo.value.retry_after > 5.0
