"""Integration tests for the GraphPulse DSA variants."""

import pytest

from repro.data import Graph, pagerank_event_driven
from repro.dsa import (
    GraphPulseAddressModel,
    GraphPulseXCacheModel,
    graphpulse_config,
)
from repro.workloads import powerlaw_graph


@pytest.fixture(scope="module")
def graph():
    return powerlaw_graph(200, 700, seed=21)


def test_config_covers_vertices(graph):
    cfg = graphpulse_config(graph.num_vertices)
    assert cfg.sets >= graph.num_vertices
    assert cfg.ways == 1  # direct-mapped per Table 3


def test_xcache_pagerank_converges(graph):
    result = GraphPulseXCacheModel(graph, num_pes=4).run()
    assert result.checks_passed
    assert result.extras["rank_sum"] == pytest.approx(1.0, abs=0.05)
    assert result.extras["events_processed"] > graph.num_vertices / 2


def test_xcache_ranks_match_reference(graph):
    model = GraphPulseXCacheModel(graph, num_pes=4, epsilon=1e-7)
    model.run()
    ref, _n = pagerank_event_driven(graph, epsilon=1e-9)
    l1 = sum(abs(a - b) for a, b in zip(model.rank, ref))
    assert l1 < 0.02


def test_coalescing_happens(graph):
    result = GraphPulseXCacheModel(graph, num_pes=4).run()
    assert result.extras["merge_ops"] > 0
    # coalescing means far fewer events processed than edges traversed
    assert result.extras["events_processed"] < result.requests


def test_event_store_never_touches_dram_for_events():
    ring = Graph(16, [(i, (i + 1) % 16) for i in range(16)])
    model = GraphPulseXCacheModel(ring, num_pes=2)
    result = model.run()
    assert result.checks_passed
    # adjacency streaming is the only DRAM traffic; the event walker
    # itself performs no fills
    assert model.system.controller.stats.get("dram_fills") == 0


def test_baseline_competitive(graph):
    x = GraphPulseXCacheModel(graph, num_pes=4).run()
    base = GraphPulseXCacheModel(graph, num_pes=4, ideal=True).run()
    assert base.checks_passed
    assert 0.8 <= x.speedup_over(base) <= 1.3


def test_address_variant_converges(graph):
    result = GraphPulseAddressModel(graph, num_pes=4).run()
    assert result.checks_passed
    assert result.extras["rank_sum"] == pytest.approx(1.0, abs=0.05)


def test_address_variant_more_onchip_traffic(graph):
    x = GraphPulseXCacheModel(graph, num_pes=4).run()
    addr = GraphPulseAddressModel(graph, num_pes=4).run()
    # RMW per insert vs a single coalescing store
    assert addr.onchip_accesses > 0
    assert addr.energy.total_pj > 0


def test_more_pes_do_not_break_convergence(graph):
    result = GraphPulseXCacheModel(graph, num_pes=16).run()
    assert result.checks_passed
