"""Tests for the microcode disassembler and program statistics."""

from repro.core import disassemble, program_stats
from repro.dsa.walkers import (
    build_event_walker,
    build_hash_walker,
    build_row_walker,
)


def test_disassemble_lists_every_routine():
    program = build_hash_walker(256, 10)
    text = disassemble(program)
    for state, event in (("Default", "MetaLoad"), ("Hash", "Hashed"),
                         ("Meta", "Fill"), ("Data", "Fill")):
        assert f"[{state}, {event}]" in text


def test_disassemble_shows_sizes_and_opcodes():
    program = build_row_walker()
    text = disassemble(program)
    assert "microcode RAM" in text
    assert "allocM" in text
    assert "enq" in text
    assert "-> " in text  # branch targets rendered


def test_disassemble_numbers_actions():
    text = disassemble(build_event_walker())
    assert "    0: allocM" in text


def test_program_stats_hash_walker():
    stats = program_stats(build_hash_walker(256, 10))
    assert stats.routines == 4
    assert stats.states == 4          # Default, Hash, Meta, Data
    assert stats.events == 3          # MetaLoad, Hashed, Fill
    assert stats.table_entries == 12
    assert stats.total_actions == stats.microcode_bytes // 4
    assert stats.branchy_routines >= 2
    assert stats.actions_by_category["meta"] >= 4


def test_program_stats_event_walker_is_tiny():
    stats = program_stats(build_event_walker())
    assert stats.routines == 1
    assert stats.total_actions <= 8
    assert stats.branchy_routines == 0
    assert "queue" not in stats.actions_by_category  # no DRAM at all


def test_program_stats_scale_with_complexity():
    small = program_stats(build_event_walker())
    big = program_stats(build_row_walker())
    assert big.total_actions > small.total_actions
    assert big.table_entries > small.table_entries


def test_render_mentions_mix():
    text = program_stats(build_hash_walker(64, 5)).render()
    assert "routines" in text and "agen=" in text
