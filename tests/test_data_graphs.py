"""Unit tests for the graph substrate and PageRank references."""

import pytest

from repro.data import (
    Graph,
    GraphLayout,
    pagerank_event_driven,
    pagerank_reference,
)
from repro.mem import MemoryImage


def ring(n):
    return Graph(n, [(i, (i + 1) % n) for i in range(n)])


def test_csr_adjacency():
    g = Graph(3, [(0, 1), (0, 2), (2, 1)])
    assert g.out_neighbors(0) == [1, 2]
    assert g.out_neighbors(1) == []
    assert g.out_degree(2) == 1
    assert g.num_edges == 3


def test_neighbors_sorted():
    g = Graph(4, [(0, 3), (0, 1), (0, 2)])
    assert g.out_neighbors(0) == [1, 2, 3]


def test_edge_bounds_checked():
    with pytest.raises(ValueError):
        Graph(2, [(0, 5)])


def test_pagerank_ring_uniform():
    ranks = pagerank_reference(ring(5), iterations=50)
    for r in ranks:
        assert r == pytest.approx(0.2, abs=1e-6)


def test_pagerank_sums_to_one():
    g = Graph(4, [(0, 1), (1, 2), (2, 0), (3, 0)])
    ranks = pagerank_reference(g, iterations=60)
    assert sum(ranks) == pytest.approx(1.0, abs=1e-6)


def test_event_driven_matches_reference_no_dangling():
    g = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2), (2, 0)])
    ref = pagerank_reference(g, iterations=100)
    evt, processed = pagerank_event_driven(g, epsilon=1e-10)
    assert processed > 0
    for a, b in zip(ref, evt):
        assert a == pytest.approx(b, abs=1e-4)


def test_event_driven_converges_sum():
    g = ring(8)
    ranks, _n = pagerank_event_driven(g, epsilon=1e-9)
    assert sum(ranks) == pytest.approx(1.0, abs=1e-5)


def test_empty_graph():
    assert pagerank_reference(Graph(0, [])) == []
    ranks, n = pagerank_event_driven(Graph(0, []))
    assert ranks == [] and n == 0


def test_hub_ranks_higher():
    # everyone points at vertex 0; 0 points back at 1
    g = Graph(5, [(i, 0) for i in range(1, 5)] + [(0, 1)])
    ranks = pagerank_reference(g, iterations=80)
    assert ranks[0] == max(ranks)


def test_layout_addresses():
    image = MemoryImage()
    g = ring(4)
    layout = GraphLayout.build(image, g)
    assert layout.indptr_entry(2) == layout.indptr_addr + 8
    assert layout.indices_entry(1) == layout.indices_addr + 4
    assert layout.rank_entry(3) == layout.rank_addr + 24
    # functional readback of indptr
    assert image.read_u32(layout.indptr_entry(4)) == 4
