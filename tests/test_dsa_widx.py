"""Integration tests for the Widx DSA variants."""

import pytest

from repro.core.config import table3_config
from repro.dsa import (
    WidxAddressModel,
    WidxBaselineModel,
    WidxWorkload,
    WidxXCacheModel,
    matched_cache_config,
)
from repro.workloads import make_widx_workload


@pytest.fixture(scope="module")
def workload():
    return make_widx_workload(num_keys=256, num_probes=512, num_buckets=128,
                              skew=1.2, hash_cycles=20, seed=11)


@pytest.fixture(scope="module")
def config():
    return table3_config("widx", scale=0.03125)


def test_xcache_variant_validates(workload, config):
    result = WidxXCacheModel(workload, config=config).run()
    assert result.checks_passed
    assert result.requests == 512
    assert result.cycles > 0
    assert 0.0 < result.hit_rate < 1.0
    assert result.energy is not None and result.energy.total_pj > 0


def test_baseline_variant_validates(workload):
    result = WidxBaselineModel(workload, num_walkers=2).run()
    assert result.checks_passed
    assert result.variant == "baseline"
    assert result.extras["hash_ops"] == 512  # hashes every probe


def test_address_variant_validates(workload, config):
    result = WidxAddressModel(workload, xcache_config=config).run()
    assert result.checks_passed
    assert result.variant == "addr"


def test_xcache_beats_always_walk_baseline(workload, config):
    x = WidxXCacheModel(workload, config=config).run()
    base = WidxBaselineModel(workload, num_walkers=2).run()
    assert x.speedup_over(base) > 1.0


def test_more_walkers_speed_up_baseline(workload):
    slow = WidxBaselineModel(workload, num_walkers=1).run()
    fast = WidxBaselineModel(workload, num_walkers=8).run()
    assert fast.cycles < slow.cycles


def test_matched_cache_config_capacity():
    xcfg = table3_config("widx")
    ccfg = matched_cache_config(xcfg)
    assert ccfg.capacity_bytes <= xcfg.data_bytes
    assert ccfg.capacity_bytes >= xcfg.data_bytes // 2


def test_string_hash_hurts_baseline_more():
    cheap = make_widx_workload(num_keys=128, num_probes=256,
                               num_buckets=128, hash_cycles=1, seed=5)
    costly = make_widx_workload(num_keys=128, num_probes=256,
                                num_buckets=128, hash_cycles=60, seed=5)
    cfg = table3_config("widx", scale=0.03125)
    gap_cheap = (WidxBaselineModel(cheap, num_walkers=2).run().cycles
                 / WidxXCacheModel(cheap, config=cfg).run().cycles)
    gap_costly = (WidxBaselineModel(costly, num_walkers=2).run().cycles
                  / WidxXCacheModel(costly, config=cfg).run().cycles)
    assert gap_costly > gap_cheap


def test_run_result_row_fields(workload, config):
    result = WidxXCacheModel(workload, config=config).run()
    row = result.row()
    assert row["dsa"] == workload.name
    assert row["variant"] == "xcache"
    assert row["ok"] is True
