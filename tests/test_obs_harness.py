"""End-to-end tests for the harness observability flags."""

import hashlib
import json

import pytest

from repro.harness.__main__ import main
from repro.obs.capture import CaptureSpec, capture_scope, current_capture


# ----------------------------------------------------------------------
# CaptureSpec plumbing
# ----------------------------------------------------------------------
def test_capture_spec_activity():
    assert not CaptureSpec().active
    assert CaptureSpec(metrics=True).active
    assert CaptureSpec(events_path="x.jsonl").active
    assert CaptureSpec(perfetto_path="x.json").active
    assert CaptureSpec(prof_path="x.folded").active
    assert CaptureSpec(timeseries_path="x.csv").active


def test_capture_spec_namespaces_paths():
    spec = CaptureSpec(events_path="out/t.jsonl", perfetto_path="t.json",
                       prof_path="cycles.folded", timeseries_path="ts.csv")
    scoped = spec.for_experiment("fig07")
    assert scoped.events_path.endswith("t.fig07.jsonl")
    assert scoped.perfetto_path == "t.fig07.json"
    assert scoped.prof_path == "cycles.fig07.folded"
    assert scoped.timeseries_path == "ts.fig07.csv"


def test_capture_scope_inactive_spec_yields_none():
    with capture_scope(CaptureSpec()) as cap:
        assert cap is None
        assert current_capture() is None


def test_capture_scope_restores_previous():
    assert current_capture() is None
    with capture_scope(CaptureSpec(metrics=True)) as cap:
        assert current_capture() is cap
    assert current_capture() is None


# ----------------------------------------------------------------------
# CLI flags
# ----------------------------------------------------------------------
def _run_cli(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


def test_metrics_summary_flag_fig07(capsys):
    code, out = _run_cli(capsys, "fig07", "--profile", "ci",
                         "--metrics-summary")
    assert code == 0
    assert "-- metrics summary (repro.obs) --" in out
    assert "hit-rate=" in out
    miss_line = next(l for l in out.splitlines()
                     if l.startswith("miss-latency"))
    assert "p50=" in miss_line and "p95=" in miss_line


def test_events_and_perfetto_flags(capsys, tmp_path):
    events = tmp_path / "t.jsonl"
    trace = tmp_path / "t.json"
    code, out = _run_cli(capsys, "fig07", "--profile", "ci",
                         "--events", str(events),
                         "--perfetto", str(trace))
    assert code == 0

    events_file = tmp_path / "t.fig07.jsonl"
    assert events_file.exists()
    lines = events_file.read_text().splitlines()
    assert lines
    kinds = set()
    for line in lines[:2000]:
        record = json.loads(line)
        assert "cycle" in record and "component" in record
        kinds.add(record["event"])
    assert {"request_arrive", "hit", "miss"} <= kinds

    payload = json.loads((tmp_path / "t.fig07.json").read_text())
    assert isinstance(payload["traceEvents"], list)
    assert any(e["ph"] == "X" for e in payload["traceEvents"])


def test_flags_compose_with_parallel(capsys, tmp_path):
    events = tmp_path / "p.jsonl"
    code, out = _run_cli(capsys, "fig04", "fig07", "--profile", "ci",
                         "--parallel", "2", "--metrics-summary",
                         "--events", str(events))
    assert code == 0
    assert out.count("-- metrics summary (repro.obs) --") == 2
    assert (tmp_path / "p.fig04.jsonl").exists()
    assert (tmp_path / "p.fig07.jsonl").exists()


def test_parallel_and_serial_metrics_agree(capsys):
    code, serial = _run_cli(capsys, "fig07", "--profile", "ci",
                            "--metrics-summary")
    assert code == 0
    code, parallel = _run_cli(capsys, "fig07", "tab01", "--profile", "ci",
                              "--parallel", "2", "--metrics-summary")
    assert code == 0

    def fig07_summary(text):
        lines = text.splitlines()
        start = lines.index("-- metrics summary (repro.obs) --")
        return lines[start:start + 5]

    assert fig07_summary(serial) == fig07_summary(parallel)


def test_prof_flag_writes_folded_and_table(capsys, tmp_path):
    folded = tmp_path / "cycles.folded"
    code, out = _run_cli(capsys, "fig07", "--profile", "ci",
                         "--prof", str(folded))
    assert code == 0
    assert "-- cycle attribution (repro.obs.prof) --" in out
    assert "conservation=conserved" in out
    assert "dram_wait" in out
    lines = (tmp_path / "cycles.fig07.folded").read_text().splitlines()
    assert lines
    for line in lines:
        stack, count = line.rsplit(" ", 1)
        assert len(stack.split(";")) == 3 and int(count) > 0


def test_timeseries_flag_writes_csv(capsys, tmp_path):
    csv = tmp_path / "ts.csv"
    code, out = _run_cli(capsys, "fig07", "--profile", "ci",
                         "--timeseries", str(csv),
                         "--timeseries-window", "250")
    assert code == 0
    lines = (tmp_path / "ts.fig07.csv").read_text().splitlines()
    assert lines[0].startswith("run,window_start,window_end,")
    assert len(lines) > 1
    # window width honored
    first = lines[1].split(",")
    header = lines[0].split(",")
    start = int(first[header.index("window_start")])
    end = int(first[header.index("window_end")])
    assert end - start == 250


def test_timeseries_window_validation(capsys):
    with pytest.raises(SystemExit):
        main(["fig07", "--profile", "ci", "--timeseries", "x.csv",
              "--timeseries-window", "0"])
    capsys.readouterr()


def test_prof_and_timeseries_compose_with_parallel(capsys, tmp_path):
    folded = tmp_path / "c.folded"
    csv = tmp_path / "ts.csv"
    code, out = _run_cli(capsys, "fig04", "fig07", "--profile", "ci",
                         "--parallel", "2",
                         "--prof", str(folded),
                         "--timeseries", str(csv))
    assert code == 0
    assert out.count("-- cycle attribution (repro.obs.prof) --") == 2
    for exp in ("fig04", "fig07"):
        assert (tmp_path / f"c.{exp}.folded").exists()
        assert (tmp_path / f"ts.{exp}.csv").exists()


def test_parallel_metric_digest_independent_of_worker_count(capsys):
    """Cross-system metric merging is deterministic: the rendered
    reports (metrics summaries included) hash identically no matter
    how many workers ran them."""
    targets = ["fig04", "fig07", "tab01"]
    digests = set()
    for jobs in (1, 2, 3):
        argv = targets + ["--profile", "ci", "--metrics-summary"]
        if jobs > 1:
            argv += ["--parallel", str(jobs)]
        code = main(argv)
        assert code == 0
        out = capsys.readouterr().out
        digests.add(hashlib.sha256(out.encode()).hexdigest())
    assert len(digests) == 1


def test_no_flags_means_no_capture(capsys, monkeypatch):
    # the default path must not arm any bus
    import repro.obs.capture as capture_mod

    def boom(*a, **k):  # pragma: no cover - should never fire
        raise AssertionError("capture created without flags")

    monkeypatch.setattr(capture_mod.Capture, "attach_system", boom)
    code, out = _run_cli(capsys, "tab01", "--profile", "ci")
    assert code == 0


# ----------------------------------------------------------------------
# span / watchdog capture
# ----------------------------------------------------------------------
def test_capture_spec_span_watchdog_activity():
    assert CaptureSpec(spans=True).active
    assert CaptureSpec(spans_path="s.json").wants_spans
    assert CaptureSpec(explain_top=3).wants_spans
    assert CaptureSpec(watchdog=True).active
    assert not CaptureSpec().wants_spans


def test_for_experiment_is_idempotent():
    """Regression: scoping twice must not double-suffix output paths."""
    spec = CaptureSpec(events_path="t.jsonl", spans_path="s.json")
    once = spec.for_experiment("fig04")
    assert once.events_path == "t.fig04.jsonl"
    assert once.spans_path == "s.fig04.json"
    assert once.for_experiment("fig04") is once
    assert once.for_experiment("fig07") is once    # already scoped


def test_spans_flag_writes_summary_and_why_slow_table(capsys, tmp_path):
    spans = tmp_path / "s.json"
    code, out = _run_cli(capsys, "fig04", "--profile", "ci",
                         "--spans", str(spans), "--explain-top", "2")
    assert code == 0
    assert "-- why-slow (repro.obs.critpath) --" in out
    assert "conservation=ok" in out
    assert "slowest 2 request(s):" in out
    assert "blame:" in out

    payload = json.loads((tmp_path / "s.fig04.json").read_text())
    assert payload["suite"] == "fig04"
    stats = next(iter(payload["components"].values()))
    assert stats["requests"] > 0
    assert stats["latency_p99"] >= stats["latency_p50"]
    assert sum(stats["blame"].values()) > 0


def test_explain_top_alone_implies_spans(capsys):
    code, out = _run_cli(capsys, "fig04", "--profile", "ci",
                         "--explain-top", "1")
    assert code == 0
    assert "-- why-slow (repro.obs.critpath) --" in out
    assert "slowest 1 request(s):" in out


def test_watchdog_flag_appends_section(capsys):
    code, out = _run_cli(capsys, "fig07", "--profile", "ci", "--watchdog")
    assert code == 0
    assert "-- watchdog (repro.obs.watchdog) --" in out
    assert "warnings=" in out


def test_spans_compose_with_parallel(capsys, tmp_path):
    spans = tmp_path / "s.json"
    code, out = _run_cli(capsys, "fig04", "fig07", "--profile", "ci",
                         "--parallel", "2", "--spans", str(spans))
    assert code == 0
    assert out.count("-- why-slow (repro.obs.critpath) --") == 2
    assert out.count("conservation=ok") == 2
    for exp in ("fig04", "fig07"):
        assert (tmp_path / f"s.{exp}.json").exists()


def test_why_slow_table_renders_blame_percentages():
    from repro.harness.report import why_slow_table

    table = why_slow_table({
        "dsa-a": {"requests": 10, "latency_p50": 3, "latency_p99": 80,
                  "blame": {"hit_path": 30, "sched_wait": 0, "exec": 20,
                            "dram": 50, "queue_stall": 0},
                  "outcomes": {"hit": 9, "walk": 1}},
    })
    lines = table.splitlines()
    assert lines[0].split("|")[0].strip() == "dsa"
    assert "hit_path" in lines[0] and "queue_stall" in lines[0]
    row = lines[2]
    assert "dsa-a" in row and "50.0%" in row and "30.0%" in row
    assert why_slow_table({}) == ""


def test_run_experiment_restarts_request_numbering():
    # Serial multi-experiment runs and --parallel workers must print
    # byte-identical reports, and --explain-top drilldowns surface raw
    # request ids — so uid numbering must depend only on the experiment
    # itself, not on what ran earlier in the process.
    from repro.core.messages import Message
    from repro.harness import run_experiment

    run_experiment("tab01", "ci")
    first = Message("probe").uid
    run_experiment("tab01", "ci")
    second = Message("probe").uid
    assert first == second
