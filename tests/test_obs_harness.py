"""End-to-end tests for the harness observability flags."""

import json

import pytest

from repro.harness.__main__ import main
from repro.obs.capture import CaptureSpec, capture_scope, current_capture


# ----------------------------------------------------------------------
# CaptureSpec plumbing
# ----------------------------------------------------------------------
def test_capture_spec_activity():
    assert not CaptureSpec().active
    assert CaptureSpec(metrics=True).active
    assert CaptureSpec(events_path="x.jsonl").active
    assert CaptureSpec(perfetto_path="x.json").active


def test_capture_spec_namespaces_paths():
    spec = CaptureSpec(events_path="out/t.jsonl", perfetto_path="t.json")
    scoped = spec.for_experiment("fig07")
    assert scoped.events_path.endswith("t.fig07.jsonl")
    assert scoped.perfetto_path == "t.fig07.json"


def test_capture_scope_inactive_spec_yields_none():
    with capture_scope(CaptureSpec()) as cap:
        assert cap is None
        assert current_capture() is None


def test_capture_scope_restores_previous():
    assert current_capture() is None
    with capture_scope(CaptureSpec(metrics=True)) as cap:
        assert current_capture() is cap
    assert current_capture() is None


# ----------------------------------------------------------------------
# CLI flags
# ----------------------------------------------------------------------
def _run_cli(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


def test_metrics_summary_flag_fig07(capsys):
    code, out = _run_cli(capsys, "fig07", "--profile", "ci",
                         "--metrics-summary")
    assert code == 0
    assert "-- metrics summary (repro.obs) --" in out
    assert "hit-rate=" in out
    miss_line = next(l for l in out.splitlines()
                     if l.startswith("miss-latency"))
    assert "p50=" in miss_line and "p95=" in miss_line


def test_events_and_perfetto_flags(capsys, tmp_path):
    events = tmp_path / "t.jsonl"
    trace = tmp_path / "t.json"
    code, out = _run_cli(capsys, "fig07", "--profile", "ci",
                         "--events", str(events),
                         "--perfetto", str(trace))
    assert code == 0

    events_file = tmp_path / "t.fig07.jsonl"
    assert events_file.exists()
    lines = events_file.read_text().splitlines()
    assert lines
    kinds = set()
    for line in lines[:2000]:
        record = json.loads(line)
        assert "cycle" in record and "component" in record
        kinds.add(record["event"])
    assert {"request_arrive", "hit", "miss"} <= kinds

    payload = json.loads((tmp_path / "t.fig07.json").read_text())
    assert isinstance(payload["traceEvents"], list)
    assert any(e["ph"] == "X" for e in payload["traceEvents"])


def test_flags_compose_with_parallel(capsys, tmp_path):
    events = tmp_path / "p.jsonl"
    code, out = _run_cli(capsys, "fig04", "fig07", "--profile", "ci",
                         "--parallel", "2", "--metrics-summary",
                         "--events", str(events))
    assert code == 0
    assert out.count("-- metrics summary (repro.obs) --") == 2
    assert (tmp_path / "p.fig04.jsonl").exists()
    assert (tmp_path / "p.fig07.jsonl").exists()


def test_parallel_and_serial_metrics_agree(capsys):
    code, serial = _run_cli(capsys, "fig07", "--profile", "ci",
                            "--metrics-summary")
    assert code == 0
    code, parallel = _run_cli(capsys, "fig07", "tab01", "--profile", "ci",
                              "--parallel", "2", "--metrics-summary")
    assert code == 0

    def fig07_summary(text):
        lines = text.splitlines()
        start = lines.index("-- metrics summary (repro.obs) --")
        return lines[start:start + 5]

    assert fig07_summary(serial) == fig07_summary(parallel)


def test_no_flags_means_no_capture(capsys, monkeypatch):
    # the default path must not arm any bus
    import repro.obs.capture as capture_mod

    def boom(*a, **k):  # pragma: no cover - should never fire
        raise AssertionError("capture created without flags")

    monkeypatch.setattr(capture_mod.Capture, "attach_system", boom)
    code, out = _run_cli(capsys, "tab01", "--profile", "ci")
    assert code == 0
