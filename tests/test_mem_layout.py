"""Unit tests for the flat memory image."""

import pytest
from hypothesis import given, strategies as st

from repro.mem import MemoryImage, OutOfMemoryError


def test_null_address_reserved():
    image = MemoryImage()
    addr = image.alloc(8)
    assert addr != 0
    assert MemoryImage.NULL == 0


def test_alloc_alignment():
    image = MemoryImage()
    image.alloc(3, align=1)
    addr = image.alloc(8, align=64)
    assert addr % 64 == 0


def test_alloc_bad_alignment_rejected():
    with pytest.raises(ValueError):
        MemoryImage().alloc(8, align=3)


def test_alloc_negative_rejected():
    with pytest.raises(ValueError):
        MemoryImage().alloc(-1)


def test_out_of_memory():
    image = MemoryImage(size=1024)
    with pytest.raises(OutOfMemoryError):
        image.alloc(2048)


def test_allocations_do_not_overlap():
    image = MemoryImage()
    spans = []
    for size in (8, 24, 64, 3, 100):
        addr = image.alloc(size)
        spans.append((addr, addr + size))
    spans.sort()
    for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
        assert e1 <= s2


def test_u32_roundtrip():
    image = MemoryImage()
    addr = image.alloc(4)
    image.write_u32(addr, 0xDEADBEEF)
    assert image.read_u32(addr) == 0xDEADBEEF


def test_u64_roundtrip():
    image = MemoryImage()
    addr = image.alloc(8)
    image.write_u64(addr, 0x0123456789ABCDEF)
    assert image.read_u64(addr) == 0x0123456789ABCDEF


def test_uint_wraps_to_width():
    image = MemoryImage()
    addr = image.alloc(2)
    image.write_uint(addr, 2, 0x12345)
    assert image.read_uint(addr, 2) == 0x2345


def test_signed_roundtrip():
    image = MemoryImage()
    addr = image.alloc(8)
    image.write_int(addr, 8, -42)
    assert image.read_int(addr, 8) == -42


def test_f64_roundtrip():
    image = MemoryImage()
    addr = image.alloc(8)
    image.write_f64(addr, 3.14159)
    assert image.read_f64(addr) == 3.14159


def test_little_endian_layout():
    image = MemoryImage()
    addr = image.alloc(4)
    image.write_u32(addr, 0x04030201)
    assert image.read_block(addr, 4) == b"\x01\x02\x03\x04"


def test_block_roundtrip():
    image = MemoryImage()
    addr = image.alloc(64, align=64)
    payload = bytes(range(64))
    image.write_block(addr, payload)
    assert image.read_block(addr, 64) == payload


def test_out_of_range_access_rejected():
    image = MemoryImage(size=256)
    with pytest.raises(IndexError):
        image.read_u64(250)


def test_arrays_helpers():
    image = MemoryImage()
    u32s = image.alloc_u32_array([1, 2, 3])
    u64s = image.alloc_u64_array([10, 20])
    f64s = image.alloc_f64_array([0.5, 1.5])
    assert image.read_u32(u32s + 4) == 2
    assert image.read_u64(u64s + 8) == 20
    assert image.read_f64(f64s) == 0.5


def test_lazy_growth_tracks_used():
    image = MemoryImage(size=1 << 20)
    before = image.used
    image.alloc(4096)
    assert image.used >= before + 4096


@given(st.integers(min_value=0, max_value=(1 << 64) - 1))
def test_u64_roundtrip_property(value):
    image = MemoryImage()
    addr = image.alloc(8)
    image.write_u64(addr, value)
    assert image.read_u64(addr) == value


@given(st.binary(min_size=1, max_size=256))
def test_block_roundtrip_property(payload):
    image = MemoryImage()
    addr = image.alloc(len(payload))
    image.write_block(addr, payload)
    assert image.read_block(addr, len(payload)) == payload


@given(st.lists(st.integers(min_value=1, max_value=128), min_size=1,
                max_size=30))
def test_alloc_disjointness_property(sizes):
    image = MemoryImage()
    spans = sorted((image.alloc(s), s) for s in sizes)
    for (a1, s1), (a2, _s2) in zip(spans, spans[1:]):
        assert a1 + s1 <= a2
