"""Tests for the §6 hierarchies: MX (MetaL1), MXA (CacheBackedMemory),
and MXS (StreamBuffer)."""

import pytest

from repro.core import (
    CacheBackedMemory,
    Controller,
    MetaL1,
    StreamBuffer,
    XCacheConfig,
    XCacheSystem,
)
from repro.data import HashIndex
from repro.dsa.walkers import build_hash_walker
from repro.mem import AddressCache, CacheConfig, DRAMModel, MemRequest, \
    MemoryImage
from repro.sim import Simulator


# ----------------------------------------------------------------------
# MX: walker-less upstream level
# ----------------------------------------------------------------------

def make_mx(entries=4):
    config = XCacheConfig(ways=4, sets=16, data_sectors=128, num_active=8,
                          xregs_per_walker=16)
    system = XCacheSystem(config, build_hash_walker(64, 5))
    index = HashIndex.build(system.image, [(k, 100 + k) for k in range(32)],
                            64)
    l1 = MetaL1(system.sim, system.controller, entries=entries)
    return system, index, l1


def test_mx_miss_forwards_downstream():
    system, index, l1 = make_mx()
    got = []
    l1.meta_load((5,), lambda r: got.append(r),
                 walk_fields={"table": index.table_addr})
    system.sim.run()
    assert got[0].found
    assert int.from_bytes(got[0].data[:8], "little") == 105
    assert l1.stats.get("misses") == 1


def test_mx_hit_serves_locally():
    system, index, l1 = make_mx()
    got = []
    l1.meta_load((5,), lambda r: got.append(r),
                 walk_fields={"table": index.table_addr})
    system.sim.run()
    downstream_loads = system.controller.stats.get("meta_loads")
    l1.meta_load((5,), lambda r: got.append(r))
    system.sim.run()
    assert len(got) == 2
    assert int.from_bytes(got[1].data[:8], "little") == 105
    assert l1.stats.get("hits") == 1
    assert system.controller.stats.get("meta_loads") == downstream_loads


def test_mx_hit_latency_lower_than_downstream():
    system, index, l1 = make_mx()
    done = []
    l1.meta_load((5,), lambda r: done.append(system.sim.now),
                 walk_fields={"table": index.table_addr})
    system.sim.run()
    start = system.sim.now
    l1.meta_load((5,), lambda r: done.append(system.sim.now))
    system.sim.run()
    assert done[1] - start <= l1.hit_latency + 1


def test_mx_lru_bounded_capacity():
    system, index, l1 = make_mx(entries=2)
    for key in (1, 2, 3):  # third insert evicts key 1
        l1.meta_load((key,), lambda r: None,
                     walk_fields={"table": index.table_addr})
        system.sim.run()
    misses_before = l1.stats.get("misses")
    l1.meta_load((1,), lambda r: None,
                 walk_fields={"table": index.table_addr})
    system.sim.run()
    assert l1.stats.get("misses") == misses_before + 1
    assert l1.stats.get("evictions") >= 1


def test_mx_merges_concurrent_same_tag():
    system, index, l1 = make_mx()
    got = []
    l1.meta_load((9,), lambda r: got.append(r),
                 walk_fields={"table": index.table_addr})
    l1.meta_load((9,), lambda r: got.append(r))
    system.sim.run()
    assert len(got) == 2
    assert system.controller.stats.get("meta_loads") == 1


def test_mx_not_found_not_cached():
    system, index, l1 = make_mx()
    got = []
    l1.meta_load((999999,), lambda r: got.append(r),
                 walk_fields={"table": index.table_addr})
    system.sim.run()
    assert not got[0].found
    assert l1.hit_rate() == 0.0


# ----------------------------------------------------------------------
# MXA: X-Cache over an address cache
# ----------------------------------------------------------------------

def test_mxa_walker_fills_through_address_cache():
    sim = Simulator()
    image = MemoryImage()
    dram = DRAMModel(sim, image)
    addr_cache = AddressCache(sim, dram, CacheConfig(ways=4, sets=16))
    backed = CacheBackedMemory(addr_cache, image)

    config = XCacheConfig(ways=4, sets=16, data_sectors=128, num_active=8,
                          xregs_per_walker=16)
    from repro.core.controller import Controller as Ctl
    controller = Ctl(sim, config, build_hash_walker(64, 5), backed)
    index = HashIndex.build(image, [(7, 70)], 64)
    got = []
    controller.set_response_handler(lambda r: got.append(r))
    controller.meta_load((7,), walk_fields={"table": index.table_addr})
    sim.run()
    assert got[0].found
    assert int.from_bytes(got[0].data[:8], "little") == 70
    assert addr_cache.stats.get("accesses") >= 2  # root + node lines


def test_mxa_second_walk_hits_address_cache():
    sim = Simulator()
    image = MemoryImage()
    dram = DRAMModel(sim, image)
    addr_cache = AddressCache(sim, dram, CacheConfig(ways=4, sets=16))
    backed = CacheBackedMemory(addr_cache, image)
    config = XCacheConfig(ways=1, sets=1, data_sectors=64, num_active=2,
                          xregs_per_walker=16)
    from repro.core.controller import Controller as Ctl
    controller = Ctl(sim, config, build_hash_walker(64, 5), backed)
    index = HashIndex.build(image, [(1, 10), (2, 20)], 64)
    controller.set_response_handler(lambda r: None)
    controller.meta_load((1,), walk_fields={"table": index.table_addr})
    sim.run()
    dram_before = dram.stats.get("reads")
    # (2,) evicts (1,) in the 1-entry X-Cache; re-walk of (1,) then hits
    # the address cache lines below (non-inclusive levels).
    controller.meta_load((2,), walk_fields={"table": index.table_addr})
    sim.run()
    controller.meta_load((1,), walk_fields={"table": index.table_addr})
    sim.run()
    assert addr_cache.stats.get("hits") > 0
    assert dram.stats.get("reads") >= dram_before


def test_mxa_write_goes_through():
    sim = Simulator()
    image = MemoryImage()
    dram = DRAMModel(sim, image)
    addr_cache = AddressCache(sim, dram, CacheConfig())
    backed = CacheBackedMemory(addr_cache, image)
    done = []
    backed.request(MemRequest(addr=128, is_write=True, data=bytes(64)),
                   lambda r: done.append(r))
    sim.run()
    assert done and done[0].addr == 128


# ----------------------------------------------------------------------
# MXS: stream buffer
# ----------------------------------------------------------------------

def make_stream(n=64, depth=4):
    sim = Simulator()
    image = MemoryImage()
    dram = DRAMModel(sim, image)
    base = image.alloc_u64_array(list(range(n)))
    stream = StreamBuffer(sim, dram, base, 8, n, depth=depth)
    return sim, dram, stream


def test_stream_sequential_read_values():
    sim, _dram, stream = make_stream(32)
    got = []
    def read_next(i=0):
        if i >= 32:
            return
        stream.read(i, lambda data: (
            got.append(int.from_bytes(data, "little")),
            read_next(i + 1),
        ))
    read_next()
    sim.run()
    assert got == list(range(32))


def test_stream_prefetch_hides_latency():
    sim, _dram, stream = make_stream(64, depth=8)
    times = []
    def read_next(i=0):
        if i >= 32:
            return
        stream.read(i, lambda data: (times.append(sim.now),
                                     read_next(i + 1)))
    read_next()
    sim.run()
    gaps = [t2 - t1 for t1, t2 in zip(times, times[1:])]
    # after warm-up, most reads are prefetch hits (small constant gap)
    assert sorted(gaps)[len(gaps) // 2] <= 2
    assert stream.stats.get("stream_hits") > 20


def test_stream_forward_only():
    sim, _dram, stream = make_stream()
    stream.read(5, lambda data: None)
    sim.run()
    with pytest.raises(ValueError):
        stream.read(3, lambda data: None)


def test_stream_bounds_checked():
    _sim, _dram, stream = make_stream(8)
    with pytest.raises(IndexError):
        stream.read(8, lambda data: None)


def test_stream_jump_ahead_fetches_directly():
    sim, _dram, stream = make_stream(128, depth=2)
    got = []
    stream.read(100, lambda data: got.append(int.from_bytes(data, "little")))
    sim.run()
    assert got == [100]
    assert stream.stats.get("window_misses") >= 1
