"""Every example script must run clean (they are the public quickstart)."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script, capsys, monkeypatch):
    # examples are deterministic and assert their own results internally
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} printed nothing"
