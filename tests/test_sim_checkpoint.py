"""Checkpoint/restore determinism, adversarial restores, fork sweeps.

The tentpole guarantee under test: ``run-to-cycle-C → snapshot →
restore → run-to-end`` equals a straight run *byte-identically* — every
``RunResult`` field (cycles, traffic, energy, extras, check verdicts) —
for all five DSAs under every compile mode, episode traces included.
A snapshot that cannot honor that must fail loudly with a typed error,
never restore into a silently wrong simulation.
"""

import dataclasses
import json
import os
import struct

import pytest

from repro.harness.sweep import (
    SWEEP_DSAS,
    build_model,
    parse_grid_entries,
    run_snapshot_sweep,
    straight_run,
    sweep_points,
    write_warm_snapshot,
)
from repro.sim import checkpoint as ck
from repro.sim.checkpoint import (
    ForkOverrideError,
    GeometryMismatchError,
    SnapshotError,
    SnapshotVersionError,
    TornSnapshotError,
)

MODES = ("off", "on", "verify")


def _snapshot_run(dsa, mode, path, warm_frac=0.5, overrides=None,
                  extra_config=None):
    """warm → save → load (fresh object graph) → run-to-end."""
    config = {"compile_mode": mode, **(extra_config or {})}
    probe = build_model(dsa, "ci", config).run()
    warm = max(1, int(probe.cycles * warm_frac))
    model = build_model(dsa, "ci", config)
    ck.warm_model(model, warm)
    header = ck.save_model(str(path), model)
    del model
    restored, loaded = ck.load_model(str(path), overrides=overrides)
    assert loaded == header
    return probe, ck.finish_model(restored), header


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("dsa", SWEEP_DSAS)
def test_snapshot_restore_byte_identity(dsa, mode, tmp_path):
    straight, resumed, header = _snapshot_run(
        dsa, mode, tmp_path / f"{dsa}.ckpt")
    assert resumed == straight          # every RunResult field
    assert header["format"] == ck.SNAPSHOT_FORMAT
    assert header["cycle"] < straight.cycles
    assert header["model_class"].lower().startswith(
        {"sparch": "sparch", "gamma": "gamma"}.get(dsa, dsa)[:5])


@pytest.mark.parametrize("mode", ("on", "verify"))
def test_snapshot_preserves_eager_episode_traces(mode, tmp_path):
    """trace_threshold=1 compiles episode traces during warmup; the
    restored run (deopt cursors included) must still match a straight
    run — the sharpest derivable-cache rebuild case."""
    straight, resumed, _ = _snapshot_run(
        "widx", mode, tmp_path / "eager.ckpt",
        extra_config={"trace_threshold": 1})
    assert resumed == straight


def test_snapshot_roundtrip_is_repeatable(tmp_path):
    """Restoring the same file twice gives the same answer twice."""
    path = tmp_path / "twice.ckpt"
    write_warm_snapshot(str(path), "widx", "ci", warm_frac=0.5)
    first = ck.finish_model(ck.load_model(str(path))[0])
    second = ck.finish_model(ck.load_model(str(path))[0])
    assert first == second


# ----------------------------------------------------------------------
# adversarial restores: every bad input dies with a typed error
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def widx_snapshot(tmp_path_factory):
    path = tmp_path_factory.mktemp("snap") / "widx.ckpt"
    header = write_warm_snapshot(str(path), "widx", "ci", warm_frac=0.5)
    return path, header


def test_truncated_snapshot_fails_loudly(widx_snapshot, tmp_path):
    path, _ = widx_snapshot
    blob = path.read_bytes()
    for cut in (3, len(ck._MAGIC) + 2, len(blob) // 2, len(blob) - 1):
        torn = tmp_path / f"torn_{cut}.ckpt"
        torn.write_bytes(blob[:cut])
        with pytest.raises(TornSnapshotError):
            ck.load_model(str(torn))


def test_corrupt_payload_fails_digest_check(widx_snapshot, tmp_path):
    path, _ = widx_snapshot
    blob = bytearray(path.read_bytes())
    blob[-10] ^= 0xFF
    bad = tmp_path / "flipped.ckpt"
    bad.write_bytes(bytes(blob))
    with pytest.raises(TornSnapshotError, match="digest mismatch"):
        ck.read_header(str(bad))


def test_not_a_snapshot_rejected(tmp_path):
    junk = tmp_path / "junk.ckpt"
    junk.write_bytes(b"definitely not a snapshot file")
    with pytest.raises(TornSnapshotError, match="not an X-Cache"):
        ck.load_model(str(junk))
    with pytest.raises(TornSnapshotError, match="cannot read"):
        ck.load_model(str(tmp_path / "absent.ckpt"))


def test_version_mismatch_rejected(widx_snapshot, tmp_path):
    path, _ = widx_snapshot
    blob = path.read_bytes()
    # same magic family, different version byte
    futuristic = tmp_path / "v9.ckpt"
    futuristic.write_bytes(b"XCKPT9\n" + blob[len(ck._MAGIC):])
    with pytest.raises(SnapshotVersionError):
        ck.load_model(str(futuristic))
    # right magic, header claims an unsupported format number
    off = len(ck._MAGIC)
    (hlen,) = struct.unpack_from("<I", blob, off)
    header = json.loads(blob[off + 4:off + 4 + hlen])
    header["format"] = 99
    hblob = json.dumps(header, sort_keys=True).encode()
    rewritten = tmp_path / "fmt99.ckpt"
    rewritten.write_bytes(ck._MAGIC + struct.pack("<I", len(hblob))
                          + hblob + blob[off + 4 + hlen:])
    with pytest.raises(SnapshotVersionError, match="format 99"):
        ck.load_model(str(rewritten))


def test_geometry_mismatch_rejected(widx_snapshot):
    path, header = widx_snapshot
    other = build_model("dasx", "ci")
    with pytest.raises(GeometryMismatchError):
        ck.load_model(str(path),
                      expect_geometry=ck.geometry_digest(other))
    # the recorded geometry digest itself passes the guard
    model, _ = ck.load_model(str(path),
                             expect_geometry=header["geometry"])
    assert ck.geometry_digest(model) == header["geometry"]


def test_geometry_digest_ignores_fork_safe_fields(widx_snapshot):
    """Forked configs still match their parent snapshot's geometry —
    the property that lets a resumed fork pass the restore guard."""
    path, header = widx_snapshot
    model, _ = ck.load_model(str(path),
                             overrides={"num_exe": 2, "dram.t_cl": 8})
    assert ck.geometry_digest(model) == header["geometry"]


def test_fork_override_whitelist_enforced(widx_snapshot):
    path, _ = widx_snapshot
    for bad in ({"ways": 8}, {"compile_mode": "off"},
                {"dram.num_banks": 4}, {"sets": 128}):
        with pytest.raises(ForkOverrideError):
            ck.load_model(str(path), overrides=bad)
    with pytest.raises(ForkOverrideError):
        sweep_points({"ways": [4, 8]})
    with pytest.raises(ForkOverrideError):
        sweep_points({"dram.num_banks": [2]})


def test_save_refuses_mid_run(widx_snapshot, tmp_path):
    path, _ = widx_snapshot
    model, _ = ck.load_model(str(path))
    model.system.sim._running = True
    with pytest.raises(SnapshotError, match="sim.run"):
        ck.save_model(str(tmp_path / "live.ckpt"), model)


# ----------------------------------------------------------------------
# fork semantics
# ----------------------------------------------------------------------

def test_fork_overrides_take_effect(widx_snapshot):
    """A forked knob must actually change post-warmup behavior, and
    match a straight run that was built with the same knob."""
    path, _ = widx_snapshot
    base = ck.finish_model(ck.load_model(str(path))[0])
    slow_dram = ck.finish_model(
        ck.load_model(str(path), overrides={"dram.t_cl": 25})[0])
    assert slow_dram.cycles > base.cycles
    assert slow_dram.hits == base.hits          # same work, new timing
    assert slow_dram.misses == base.misses


def test_rebind_field_fork_deopts_saved_trace_cursors(tmp_path):
    """Forking num_exe re-segments the rebuilt episode traces, so a
    saved mid-trace cursor (a segment index into the *old*
    segmentation) must deopt to the interpreter, not be re-pointed —
    a stale cursor livelocks the tail run."""
    import signal

    total = build_model("widx", "quick").run().cycles
    model = build_model("widx", "quick")
    ck.warm_model(model, int(total * 0.85))
    execq = model.system.controller._execq
    assert any(ex.trace is not None and ex.trace_pos for ex in execq), (
        "precondition lost: no in-flight trace cursor at this warm "
        "cycle — move the warm point so the regression still bites")
    path = tmp_path / "warm.ckpt"
    ck.save_model(str(path), model)
    del model

    restored, _ = ck.load_model(str(path), overrides={"num_exe": 4})
    assert all(not ex.trace_pos
               for ex in restored.system.controller._execq)

    def _bail(signum, frame):
        raise AssertionError("fork with num_exe override livelocked")

    signal.signal(signal.SIGALRM, _bail)
    signal.alarm(120)
    try:
        result = ck.finish_model(restored)
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, signal.SIG_DFL)
    assert result.checks_passed
    assert result.cycles < 2 * total


def test_sweep_points_deterministic_product():
    points = sweep_points({"num_exe": [4, 2], "dram.t_cl": [8, 11]})
    # fields iterate sorted; value order within a field is preserved
    assert points == [
        {"dram.t_cl": 8, "num_exe": 4}, {"dram.t_cl": 8, "num_exe": 2},
        {"dram.t_cl": 11, "num_exe": 4}, {"dram.t_cl": 11, "num_exe": 2},
    ]
    again = sweep_points({"num_exe": [4, 2], "dram.t_cl": [8, 11]})
    assert points == again
    with pytest.raises(ValueError):
        sweep_points({"num_exe": []})


def test_parse_grid_entries_types_values():
    grid = parse_grid_entries(["num_exe=2,4", "dram.t_cl=8"])
    assert grid == {"num_exe": [2, 4], "dram.t_cl": [8]}
    with pytest.raises(ValueError):
        parse_grid_entries(["num_exe"])


def test_run_snapshot_sweep_base_point_matches_straight_run(widx_snapshot):
    """The sweep runner's no-override point IS a straight run (an
    overridden point is not: it changes the knob at the snapshot cycle,
    a straight run changes it at cycle zero — by design)."""
    path, _ = widx_snapshot
    swept = run_snapshot_sweep(str(path), [{}, {"num_exe": 2}])
    assert swept[0].result == straight_run("widx", "ci")
    # the overridden point still completes the same work
    assert swept[1].result.requests == swept[0].result.requests
    assert swept[1].result.checks_passed


# ----------------------------------------------------------------------
# provenance: forked results never alias straight ones
# ----------------------------------------------------------------------

def test_jobspec_digest_folds_snapshot_provenance():
    from repro.svc.jobs import JobSpec

    straight = JobSpec(experiment="ckpt:widx", profile="ci")
    forked = JobSpec(experiment="ckpt:widx", profile="ci",
                     snapshot="/tmp/warm.ckpt", snapshot_digest="ab" * 32)
    other_fork = JobSpec(experiment="ckpt:widx", profile="ci",
                         snapshot="/tmp/warm.ckpt",
                         snapshot_digest="ab" * 32,
                         fork_overrides=(("num_exe", 2),))
    digests = {straight.digest(), forked.digest(), other_fork.digest()}
    assert len(digests) == 3
    # the path is a hint; only the content digest is identity
    moved = dataclasses.replace(forked, snapshot="/elsewhere/warm.ckpt")
    assert moved.digest() == forked.digest()
    # scheduling hints never change identity
    hinted = dataclasses.replace(forked, checkpoint_every=500,
                                 checkpoint_dir="/tmp/ck")
    assert hinted.digest() == forked.digest()


def test_suite_memo_key_folds_snapshot_provenance(tmp_path, monkeypatch):
    from repro.harness import suite

    monkeypatch.setenv(suite.SUITE_CACHE_ENV, str(tmp_path))
    plain = suite._memo_key("ci", ("dasx",))
    assert plain == ("ci", ("dasx",))   # historical keys unchanged
    forked = suite._memo_key("ci", ("dasx",),
                             {"snapshot": "ab" * 32,
                              "fork_overrides": {"num_exe": 2}})
    assert forked != plain
    assert "provenance" in suite._canonical_key(forked)
    assert "provenance" not in suite._canonical_key(plain)
    assert (suite._disk_cache_path(forked).name
            != suite._disk_cache_path(plain).name)


# ----------------------------------------------------------------------
# service preemption: checkpoint → crash → resume, byte-identically
# ----------------------------------------------------------------------

def test_svc_preemption_resumes_from_checkpoint(tmp_path, monkeypatch):
    """A ckpt: job whose worker dies right after persisting its first
    checkpoint is retried on a fresh worker, resumes from that
    checkpoint (not cycle zero), and produces the identical result an
    undisturbed execution produces."""
    from repro.svc.jobs import JobSpec
    from repro.svc.pool import CRASH_AFTER_CKPT_ENV
    from repro.svc.service import Service

    snap = tmp_path / "warm.ckpt"
    write_warm_snapshot(str(snap), "widx", "ci", warm_frac=0.6)
    ckdir = tmp_path / "resume"
    ckdir.mkdir()
    spec = JobSpec(experiment="ckpt:widx", profile="ci",
                   fork_overrides=(("num_exe", 2),),
                   snapshot=str(snap),
                   snapshot_digest=ck.snapshot_digest(str(snap)),
                   checkpoint_every=400, checkpoint_dir=str(ckdir))
    marker = tmp_path / "crash.marker"
    monkeypatch.setenv(CRASH_AFTER_CKPT_ENV, str(marker))
    monkeypatch.delenv("REPRO_SVC_CRASH_ONCE", raising=False)
    with Service(workers=1, store=None) as svc:
        job = svc.submit(spec)
        crashed = job.result(timeout=300)
        span = svc.job_span(job)
        # marker exists now, so the rerun executes undisturbed
        clean = svc.submit(spec).result(timeout=300)
    assert marker.exists()
    assert job.attempts == 2
    assert crashed["metadata"]["resumed_from"] > 0
    assert span.preempted_at == crashed["metadata"]["resumed_from"]
    assert job.retry_log[0]["checkpoint_cycle"] == span.preempted_at
    assert clean["metadata"]["resumed_from"] == 0
    assert crashed["result_digest"] == clean["result_digest"]
    assert crashed["rendered"] == clean["rendered"]
    # completion removed the resume file: nothing stale left behind
    assert not list(ckdir.iterdir())


def test_service_validates_ckpt_specs():
    from repro.svc.jobs import JobSpec
    from repro.svc.service import Service

    svc = Service(workers=1, store=None)  # never started: _validate only
    with pytest.raises(ValueError, match="unknown ckpt dsa"):
        svc._validate(JobSpec(experiment="ckpt:nope"))
    with pytest.raises(ForkOverrideError):
        svc._validate(JobSpec(experiment="ckpt:widx",
                              fork_overrides=(("ways", 8),)))
    with pytest.raises(ValueError, match="checkpoint_dir"):
        svc._validate(JobSpec(experiment="ckpt:widx",
                              checkpoint_every=100))
    svc._validate(JobSpec(experiment="ckpt:widx",
                          fork_overrides=(("num_exe", 2),)))
