"""Tests for the blocking-thread controller baseline (Figure 7)."""

import pytest

from repro.core import ThreadController, WalkStep
from repro.mem import DRAMModel, MemoryImage
from repro.sim import Simulator


def make_threads(pipelines=2, context_bytes=512):
    sim = Simulator()
    dram = DRAMModel(sim, MemoryImage())
    return sim, ThreadController(sim, dram, num_pipelines=pipelines,
                                 context_bytes=context_bytes)


def test_step_validation():
    with pytest.raises(ValueError):
        WalkStep("teleport")


def test_pipeline_count_validation():
    sim = Simulator()
    dram = DRAMModel(sim, MemoryImage())
    with pytest.raises(ValueError):
        ThreadController(sim, dram, num_pipelines=0)


def test_compute_walk_completes():
    sim, threads = make_threads()
    threads.submit([WalkStep("compute", cycles=10)])
    sim.run()
    assert threads.walks_completed == 1
    assert threads.drained
    assert sim.now >= 10


def test_dram_step_blocks_until_fill():
    sim, threads = make_threads()
    threads.submit([WalkStep("dram", addr=0)])
    sim.run()
    assert threads.walks_completed == 1
    assert threads.stats.get("dram_fetches") == 1
    assert sim.now > 10  # DRAM latency on the critical path


def test_pipelines_limit_concurrency():
    sim, threads = make_threads(pipelines=1)
    for _ in range(3):
        threads.submit([WalkStep("compute", cycles=10)])
    sim.run()
    assert threads.walks_completed == 3
    assert sim.now >= 30  # serialized on one pipeline


def test_parallel_pipelines_overlap():
    sim, threads = make_threads(pipelines=4)
    for _ in range(4):
        threads.submit([WalkStep("compute", cycles=10)])
    sim.run()
    assert sim.now < 20


def test_occupancy_integral_counts_stalls():
    sim, threads = make_threads(pipelines=1, context_bytes=100)
    threads.submit([WalkStep("compute", cycles=50)])
    sim.run()
    threads.finalize()
    assert threads.occupancy_byte_cycles == pytest.approx(100 * 50, rel=0.1)


def test_occupancy_grows_with_queueing():
    occ = []
    for n_walks in (1, 4):
        sim, threads = make_threads(pipelines=1, context_bytes=64)
        for _ in range(n_walks):
            threads.submit([WalkStep("dram", addr=0)])
        sim.run()
        threads.finalize()
        occ.append(threads.occupancy_byte_cycles)
    assert occ[1] > 2 * occ[0]


def test_walk_latency_histogram():
    sim, threads = make_threads()
    threads.submit([WalkStep("compute", cycles=5),
                    WalkStep("dram", addr=64)])
    sim.run()
    hist = threads.stats.histogram("walk_latency")
    assert hist.count == 1
    assert hist.mean > 5
