"""Tests for the perf-regression gate (`python -m repro.obs.regress`)."""

import json
import os
import pathlib
import shutil
import subprocess
import sys

import pytest

from repro.obs.regress import compare_records, main

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
BASELINES = [REPO_ROOT / "BENCH_kernel.json", REPO_ROOT / "BENCH_obs.json"]


# ----------------------------------------------------------------------
# metric classification / thresholds
# ----------------------------------------------------------------------
def test_throughput_gated_higher_better():
    base = {"benchmark": "b", "x_per_sec": 1000}
    ok = compare_records({"benchmark": "b", "x_per_sec": 800}, base)
    bad = compare_records({"benchmark": "b", "x_per_sec": 700}, base)
    assert ok[0].ok and not bad[0].ok


def test_overhead_gated_lower_better():
    base = {"benchmark": "b", "noop_overhead_x": 4.0}
    ok = compare_records({"benchmark": "b", "noop_overhead_x": 4.9}, base)
    bad = compare_records({"benchmark": "b", "noop_overhead_x": 5.5}, base)
    assert ok[0].ok and not bad[0].ok
    assert ok[0].note == "lower-better"


def test_improvements_always_pass():
    base = {"benchmark": "b", "x_per_sec": 1000, "speedup": 2.0,
            "cost_x": 5.0}
    checks = compare_records(
        {"benchmark": "b", "x_per_sec": 9000, "speedup": 4.0,
         "cost_x": 1.0}, base)
    assert all(c.ok for c in checks)


def test_config_keys_must_match_exactly():
    base = {"benchmark": "b", "events": 500, "x_per_sec": 1000}
    checks = compare_records(
        {"benchmark": "b", "events": 100, "x_per_sec": 1000}, base)
    config = [c for c in checks if c.note == "config mismatch"]
    assert len(config) == 1 and not config[0].ok
    # smoke mode runs a smaller workload on purpose
    smoke = compare_records(
        {"benchmark": "b", "events": 100, "x_per_sec": 1000}, base,
        smoke=True)
    assert all(c.ok for c in smoke)


def test_smoke_sanity_checks_throughput_but_gates_ratios():
    base = {"benchmark": "b", "x_per_sec": 1000, "speedup": 2.6}
    # throughput collapse passes in smoke (different machine)...
    slow = compare_records(
        {"benchmark": "b", "x_per_sec": 3, "speedup": 2.5}, base,
        smoke=True)
    assert all(c.ok for c in slow)
    # ...but a machine-portable ratio collapse still fails
    degraded = compare_records(
        {"benchmark": "b", "x_per_sec": 1000, "speedup": 0.9}, base,
        smoke=True)
    assert any(not c.ok for c in degraded)
    # and a zero throughput is never ok
    dead = compare_records(
        {"benchmark": "b", "x_per_sec": 0, "speedup": 2.6}, base,
        smoke=True)
    assert any(not c.ok for c in dead)


def test_tolerance_override():
    base = {"benchmark": "b", "x_per_sec": 1000}
    checks = compare_records(
        {"benchmark": "b", "x_per_sec": 950}, base,
        tolerances={"x_per_sec": 0.01})
    assert not checks[0].ok


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_committed_baselines_self_compare_clean(capsys):
    """Acceptance: the gate passes on the committed BENCH_*.json."""
    code = main(["--baseline", str(REPO_ROOT)]
                + [str(p) for p in BASELINES])
    assert code == 0
    out = capsys.readouterr().out
    assert "within thresholds" in out
    assert "FAIL" not in out


def test_degraded_record_fails(tmp_path, capsys):
    """Acceptance: a synthetically degraded record exits nonzero."""
    record = json.loads((REPO_ROOT / "BENCH_kernel.json").read_text())
    record["bucket_events_per_sec"] = int(
        record["bucket_events_per_sec"] * 0.5)
    record["speedup"] = 0.9
    fresh = tmp_path / "BENCH_kernel.json"
    fresh.write_text(json.dumps(record))

    code = main(["--baseline", str(REPO_ROOT), str(fresh)])
    assert code == 1
    out = capsys.readouterr().out
    assert "FAIL" in out and "regressed" in out
    # the ratio regression also fails under the relaxed smoke gate
    assert main(["--baseline", str(REPO_ROOT), "--smoke",
                 str(fresh)]) == 1
    capsys.readouterr()


def test_report_json_written(tmp_path, capsys):
    report = tmp_path / "regress.json"
    code = main(["--baseline", str(REPO_ROOT),
                 "--report", str(report),
                 str(REPO_ROOT / "BENCH_kernel.json")])
    assert code == 0
    payload = json.loads(report.read_text())
    assert payload["failed"] == 0
    assert {c["metric"] for c in payload["checks"]} >= {
        "heap_events_per_sec", "bucket_events_per_sec", "speedup"}
    capsys.readouterr()


def test_missing_baseline_is_usage_error(tmp_path, capsys):
    fresh = tmp_path / "BENCH_unknown.json"
    fresh.write_text(json.dumps({"benchmark": "unknown"}))
    with pytest.raises(SystemExit) as exc:
        main(["--baseline", str(REPO_ROOT), str(fresh)])
    assert exc.value.code == 2
    capsys.readouterr()


def test_benchmark_name_mismatch_is_usage_error(tmp_path, capsys):
    fresh = tmp_path / "BENCH_kernel.json"
    fresh.write_text(json.dumps({"benchmark": "other"}))
    with pytest.raises(SystemExit) as exc:
        main(["--baseline", str(REPO_ROOT), str(fresh)])
    assert exc.value.code == 2
    capsys.readouterr()


def test_malformed_record_is_usage_error(tmp_path, capsys):
    fresh = tmp_path / "BENCH_kernel.json"
    fresh.write_text("not json")
    with pytest.raises(SystemExit) as exc:
        main(["--baseline", str(REPO_ROOT), str(fresh)])
    assert exc.value.code == 2
    capsys.readouterr()


def test_module_entrypoint_runs(tmp_path):
    """`python -m repro.obs.regress` works end to end."""
    shutil.copy(REPO_ROOT / "BENCH_obs.json", tmp_path / "BENCH_obs.json")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.obs.regress",
         "--baseline", str(REPO_ROOT),
         str(tmp_path / "BENCH_obs.json")],
        capture_output=True, text=True,
        cwd=str(REPO_ROOT),
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
    )
    assert proc.returncode == 0, proc.stderr
    assert "within thresholds" in proc.stdout

# ----------------------------------------------------------------------
# SLO mode (--slo)
# ----------------------------------------------------------------------
from repro.obs.regress import check_slo  # noqa: E402


def _span_summary(suite="fig14", p50=10, p99=200, requests=500):
    return {"suite": suite, "components": {
        "dsa-a": {"requests": requests, "latency_p50": p50,
                  "latency_p99": p99, "latency_mean": 42.0,
                  "latency_max": p99 * 2,
                  "blame": {"dram": 1}, "outcomes": {"hit": requests}}}}


def test_check_slo_within_budget():
    policy = {"suites": {"fig14": {"latency_p50": 20, "latency_p99": 300,
                                   "min_requests": 100}}}
    checks = check_slo(_span_summary(), policy)
    assert [c.metric for c in checks] == [
        "dsa-a.requests", "dsa-a.latency_p50", "dsa-a.latency_p99"]
    assert all(c.ok for c in checks)


def test_check_slo_breach_and_component_override():
    policy = {"suites": {"fig14": {
        "latency_p99": 300,
        "components": {"dsa-a": {"latency_p99": 100}}}}}
    checks = check_slo(_span_summary(p99=200), policy)
    assert len(checks) == 1
    assert checks[0].metric == "dsa-a.latency_p99"
    assert checks[0].baseline == 100 and not checks[0].ok


def test_check_slo_min_requests_guards_empty_suite():
    policy = {"suites": {"fig14": {"min_requests": 100}}}
    bad = check_slo(_span_summary(requests=3), policy)
    assert len(bad) == 1 and not bad[0].ok
    assert bad[0].note == "slo: higher-better"


def test_check_slo_default_suite_fallback():
    policy = {"suites": {"default": {"latency_p50": 20}}}
    checks = check_slo(_span_summary(suite="anything"), policy)
    assert len(checks) == 1 and checks[0].ok


def test_check_slo_unknown_suite_is_usage_error():
    with pytest.raises(SystemExit) as exc:
        check_slo(_span_summary(suite="ungated"), {"suites": {"fig14": {}}})
    assert exc.value.code == 2


def test_slo_cli_pass_fail_and_report(tmp_path, capsys):
    slo = tmp_path / "SLO.json"
    slo.write_text(json.dumps(
        {"suites": {"fig14": {"latency_p50": 20, "latency_p99": 300}}}))
    summary = tmp_path / "spans.fig14.json"
    summary.write_text(json.dumps(_span_summary()))
    report = tmp_path / "report.json"

    code = main(["--slo", str(slo), "--report", str(report), str(summary)])
    out = capsys.readouterr().out
    assert code == 0
    assert "within budget" in out and "FAIL" not in out
    payload = json.loads(report.read_text())
    assert payload["failed"] == 0
    assert all(c["suite"] == "fig14" for c in payload["checks"])

    summary.write_text(json.dumps(_span_summary(p99=999)))
    code = main(["--slo", str(slo), str(summary)])
    out = capsys.readouterr().out
    assert code == 1
    assert "FAIL" in out and "breached" in out


def test_slo_smoke_does_not_loosen_budgets(tmp_path, capsys):
    """Latencies are simulated cycles: --smoke must not change verdicts."""
    slo = tmp_path / "SLO.json"
    slo.write_text(json.dumps({"suites": {"fig14": {"latency_p99": 100}}}))
    summary = tmp_path / "spans.fig14.json"
    summary.write_text(json.dumps(_span_summary(p99=101)))
    assert main(["--slo", str(slo), str(summary)]) == 1
    assert main(["--slo", str(slo), "--smoke", str(summary)]) == 1
    capsys.readouterr()


def test_slo_malformed_inputs_are_usage_errors(tmp_path, capsys):
    slo = tmp_path / "SLO.json"
    slo.write_text("not json")
    summary = tmp_path / "spans.json"
    summary.write_text(json.dumps(_span_summary()))
    with pytest.raises(SystemExit) as exc:
        main(["--slo", str(slo), str(summary)])
    assert exc.value.code == 2

    slo.write_text(json.dumps({"suites": {"fig14": {}}}))
    summary.write_text(json.dumps({"no": "components"}))
    with pytest.raises(SystemExit) as exc:
        main(["--slo", str(slo), str(summary)])
    assert exc.value.code == 2
    capsys.readouterr()


def test_baseline_required_unless_slo(tmp_path, capsys):
    summary = tmp_path / "spans.json"
    summary.write_text(json.dumps(_span_summary()))
    with pytest.raises(SystemExit) as exc:
        main([str(summary)])
    assert exc.value.code == 2
    capsys.readouterr()


def test_committed_slo_gates_fresh_ci_summary(tmp_path, capsys):
    """Acceptance: a fresh ci-profile span summary passes SLO.json."""
    from repro.harness import run_experiment
    from repro.harness.suite import clear_cache
    from repro.obs.capture import CaptureSpec, capture_scope

    slo_path = REPO_ROOT / "SLO.json"
    clear_cache()
    spans = tmp_path / "spans.json"
    try:
        spec = CaptureSpec(spans_path=str(spans)).for_experiment("fig04")
        with capture_scope(spec):
            run_experiment("fig04", "ci")
    finally:
        clear_cache()
    code = main(["--slo", str(slo_path), str(tmp_path / "spans.fig04.json")])
    assert code == 0
    assert "FAIL" not in capsys.readouterr().out
