"""Service-plane telemetry: lifecycle spans, the metrics registry with
Prometheus exposition, the durable run ledger, stream fidelity, and the
``svc top`` / ``svc history`` surfaces. Worker pools are real spawned
processes, so tests share small pools and lean on the synthetic
``sleep:`` experiment."""

import queue
import threading
import urllib.error
import urllib.request

import pytest

from repro.svc.jobs import JobSpec
from repro.svc.pool import CRASH_ONCE_ENV
from repro.svc.service import Service
from repro.svc.stream import Subscription
from repro.svc.telemetry import (
    LEDGER_ENV,
    JobSpan,
    MetricsHTTPServer,
    MetricsRegistry,
    RunLedger,
    format_history,
    merge_snapshots,
    render_prometheus,
    render_top,
)


def _series_value(snapshot, name, label_items=()):
    """Pull one series value out of a registry snapshot (wire form)."""
    for key, value in snapshot[name]["series"]:
        if tuple(tuple(item) for item in key) == tuple(label_items):
            return value
    raise KeyError((name, label_items))


# ----------------------------------------------------------------------
# job-lifecycle spans
# ----------------------------------------------------------------------

def test_span_split_tiles_end_to_end_exactly():
    """queue_wait + dispatch + sim_exec + store_write == end_to_end —
    not within tolerance: the dispatch residual makes it exact."""
    with Service(workers=1) as svc:
        job = svc.submit(JobSpec(experiment="sleep:0.2"))
        job.result(timeout=30)
        span = svc.job_span(job)
    split = span.split()
    assert set(split) == {"queue_wait", "dispatch", "sim_exec",
                          "store_write"}
    assert abs(sum(split.values()) - span.end_to_end) < 1e-9
    # components are sane: the sleep dominates, everything measured
    assert span.end_to_end > 0
    assert split["sim_exec"] == pytest.approx(0.2, abs=0.15)
    assert split["queue_wait"] >= 0
    assert split["store_write"] >= 0
    assert span.state == "done"


def test_span_timestamps_ordered():
    with Service(workers=1) as svc:
        job = svc.submit(JobSpec(experiment="sleep:0"))
        job.result(timeout=30)
        ts = job.ts
    assert (ts["submitted"] <= ts["admitted"] <= ts["dispatched"]
            <= ts["finished"])


def test_store_hit_span_records_no_execution():
    with Service(workers=1) as svc:
        spec = JobSpec(experiment="sleep:0")
        svc.submit(spec).result(timeout=30)
        hit = svc.submit(spec)
        hit.result(timeout=5)
        span = svc.job_span(hit)
        assert hit.from_store
        assert span.from_store
        assert span.sim_exec == 0.0
        assert span.queue_wait == 0.0   # never dispatched


def test_job_span_residual_dispatch_never_hides_time():
    span = JobSpan(1, "d" * 64, "sleep:0")
    span.admitted, span.dispatched, span.finished = 0.0, 0.25, 1.0
    span.sim_exec, span.store_write = 0.5, 0.05
    split = span.split()
    assert split["queue_wait"] == pytest.approx(0.25)
    assert split["dispatch"] == pytest.approx(0.2)
    assert sum(split.values()) == pytest.approx(span.end_to_end)


# ----------------------------------------------------------------------
# metrics registry + Prometheus exposition
# ----------------------------------------------------------------------

def test_registry_counts_job_outcomes():
    with Service(workers=1) as svc:
        spec = JobSpec(experiment="sleep:0")
        svc.submit(spec).result(timeout=30)
        svc.submit(spec).result(timeout=5)          # store hit
        reg = svc.registry
        assert reg.value("jobs_submitted_total") == 2
        assert reg.value("jobs_completed_total") == 2
        assert reg.value("jobs_from_store_total") == 1
        snap = svc.telemetry_snapshot()
        # scrape-time sync pins store counters to the store's own stats
        assert _series_value(snap, "store_hits_total") == 1
        assert _series_value(snap, "store_misses_total") == 1
        assert _series_value(snap, "store_writes_total") == 1
        # the executed job fed the latency summaries; the store hit
        # did not (it ran no simulation)
        latency = _series_value(snap, "job_latency_seconds",
                                (("experiment", "sleep:0"),))
        assert latency["count"] == 1


def test_prometheus_rendering_golden():
    """The exposition format is deterministic — byte-for-byte."""
    reg = MetricsRegistry()
    reg.counter("jobs_completed_total", "Jobs finished DONE.")
    reg.gauge("queue_depth", "Jobs pending.")
    reg.summary("job_latency_seconds", "End-to-end wall latency.")
    reg.inc("jobs_completed_total", 3)
    reg.set("queue_depth", 2)
    reg.observe("job_latency_seconds", 0.5, experiment="fig04")
    reg.observe("job_latency_seconds", 1.0, experiment="fig04")
    golden = "\n".join([
        "# HELP repro_svc_job_latency_seconds End-to-end wall latency.",
        "# TYPE repro_svc_job_latency_seconds summary",
        'repro_svc_job_latency_seconds{experiment="fig04",'
        'quantile="0.5"} 0.5',
        'repro_svc_job_latency_seconds{experiment="fig04",'
        'quantile="0.95"} 1',
        'repro_svc_job_latency_seconds{experiment="fig04",'
        'quantile="0.99"} 1',
        'repro_svc_job_latency_seconds_sum{experiment="fig04"} 1.5',
        'repro_svc_job_latency_seconds_count{experiment="fig04"} 2',
        "# HELP repro_svc_jobs_completed_total Jobs finished DONE.",
        "# TYPE repro_svc_jobs_completed_total counter",
        "repro_svc_jobs_completed_total 3",
        "# HELP repro_svc_queue_depth Jobs pending.",
        "# TYPE repro_svc_queue_depth gauge",
        "repro_svc_queue_depth 2",
    ]) + "\n"
    assert reg.render() == golden
    # rendering a snapshot (the wire/merge form) gives the same bytes
    assert render_prometheus(reg.snapshot()) == golden


def test_registry_type_conflicts_rejected():
    reg = MetricsRegistry()
    reg.counter("thing_total")
    with pytest.raises(ValueError):
        reg.gauge("thing_total")


def test_summary_quantiles_survive_quantization():
    reg = MetricsRegistry()
    for ms in range(1, 101):
        reg.observe("lat", ms / 1000.0)
    snap = reg.snapshot()
    assert _series_value(snap, "lat")["count"] == 100
    # 2-significant-digit microsecond quantization keeps quantiles exact
    # for round inputs
    assert 'repro_svc_lat{quantile="0.5"} 0.05' in render_prometheus(snap)


def test_concurrent_registry_updates_are_safe():
    reg = MetricsRegistry()
    reg.counter("n_total")

    def spin():
        for _ in range(1000):
            reg.inc("n_total")
            reg.observe("lat", 0.001)

    threads = [threading.Thread(target=spin) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert reg.value("n_total") == 4000
    assert _series_value(reg.snapshot(), "lat")["count"] == 4000


def test_snapshot_merge_is_order_independent():
    def shard(latencies, completed):
        reg = MetricsRegistry()
        reg.counter("jobs_completed_total")
        reg.gauge("queue_depth")
        reg.inc("jobs_completed_total", completed)
        reg.set("queue_depth", completed)
        for value in latencies:
            reg.observe("job_latency_seconds", value)
        return reg.snapshot()

    shards = [shard([0.1, 0.2], 2), shard([0.3], 1),
              shard([0.4, 0.5, 0.6], 3)]
    forward = merge_snapshots(shards)
    backward = merge_snapshots(shards[::-1])
    assert forward == backward
    assert render_prometheus(forward) == render_prometheus(backward)
    # counters and summaries accumulated, gauges took the max
    assert _series_value(forward, "jobs_completed_total") == 6
    assert _series_value(forward, "queue_depth") == 3
    assert _series_value(forward, "job_latency_seconds")["count"] == 6


def test_parallel_harness_exports_telemetry():
    from repro.harness.parallel import run_parallel

    out = {}
    results = run_parallel(["fig04", "fig07"], "ci", jobs=2,
                           telemetry=out)
    assert len(results) == 2 and all(ok for _, ok in results)
    assert out["metrics"]["completed"] == 2
    snap = out["snapshot"]
    assert _series_value(snap, "jobs_completed_total") == 2
    # merging the batch snapshot with itself doubles counters — the
    # cross-batch aggregation path sharded callers use
    merged = merge_snapshots([snap, snap])
    assert _series_value(merged, "jobs_completed_total") == 4


def test_metrics_http_endpoint_serves_prometheus():
    with Service(workers=1) as svc:
        svc.submit(JobSpec(experiment="sleep:0")).result(timeout=30)
        server = MetricsHTTPServer(svc.prometheus, port=0).start()
        try:
            url = f"http://127.0.0.1:{server.port}/metrics"
            with urllib.request.urlopen(url, timeout=10) as response:
                assert response.status == 200
                assert "version=0.0.4" in response.headers["Content-Type"]
                body = response.read().decode()
            assert "repro_svc_jobs_completed_total 1" in body
            # pre-registered zero: scrapeable before any crash
            assert "repro_svc_worker_restarts_total 0" in body
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(
                    f"http://127.0.0.1:{server.port}/nope", timeout=10)
        finally:
            server.stop()


# ----------------------------------------------------------------------
# run ledger
# ----------------------------------------------------------------------

def test_ledger_replay_round_trip(tmp_path):
    ledger = tmp_path / "runs.jsonl"
    with Service(workers=1, ledger=ledger) as svc:
        spec = JobSpec(experiment="sleep:0.05")
        first = svc.submit(spec)
        first.result(timeout=30)
        svc.submit(spec).result(timeout=5)           # store hit
        assert svc.history(limit=1)[0]["from_store"] is True
    entries = RunLedger.read(ledger)
    assert [e["job"] for e in entries] == [first.id, first.id + 1]
    ran, hit = entries
    assert ran["state"] == "done" and ran["ok"] is True
    assert ran["from_store"] is False
    assert ran["digest"] == first.digest
    assert ran["result_digest"] == first.result_digest
    assert ran["worker_history"] == [1]
    timings = ran["timings"]
    assert timings["end_to_end"] == pytest.approx(
        sum(timings[k] for k in ("queue_wait", "dispatch", "sim_exec",
                                 "store_write")), abs=1e-5)
    assert hit["from_store"] is True
    assert hit["result_digest"] == ran["result_digest"]
    # the history table renders what the ledger wrote
    table = format_history(entries)
    assert "sleep:0.05" in table and "done" in table
    # a torn final line (coordinator killed mid-write) is skipped
    with open(ledger, "a") as fh:
        fh.write('{"kind": "job", "jo')
    assert len(RunLedger.read(ledger)) == 2
    assert RunLedger.find_job(ledger, first.id)["job"] == first.id
    assert RunLedger.find_job(ledger, -1) is None


def test_kill_mid_job_retry_chain_lands_in_ledger(tmp_path, monkeypatch):
    """A worker crash mid-job leaves both worker ids in the ledger's
    retry chain, and the job still completes on the replacement."""
    marker = tmp_path / "crash-once"
    monkeypatch.setenv(CRASH_ONCE_ENV, str(marker))
    ledger = tmp_path / "runs.jsonl"
    with Service(workers=1, max_attempts=2, ledger=ledger) as svc:
        job = svc.submit(JobSpec(experiment="sleep:0.1"))
        payload = job.result(timeout=60)
        assert payload["all_ok"] is True
        assert marker.exists()
        assert "repro_svc_worker_restarts_total 1" in svc.prometheus()
        assert svc.registry.value("jobs_retried_total") == 1
    entry = RunLedger.find_job(ledger, job.id)
    assert entry["state"] == "done"
    assert entry["attempts"] == 2
    assert entry["worker_history"] == [1, 2]   # crashed, then replacement
    assert entry["worker"] == 2
    (retry,) = entry["retries"]
    assert retry["worker"] == 1
    assert retry["exitcode"] == 13
    assert retry["lost_s"] >= 0


def test_ledger_env_var_arms_the_default(tmp_path, monkeypatch):
    path = tmp_path / "env-ledger.jsonl"
    monkeypatch.setenv(LEDGER_ENV, str(path))
    with Service(workers=1) as svc:
        svc.submit(JobSpec(experiment="sleep:0")).result(timeout=30)
    assert len(RunLedger.read(path)) == 1


# ----------------------------------------------------------------------
# stream fidelity
# ----------------------------------------------------------------------

def test_subscription_overflow_drops_oldest_samplable():
    drops = []
    sub = Subscription(maxsize=3, on_drop=drops.append)
    for seq in range(5):
        sub.feed({"kind": "event", "seq": seq})
    assert sub.dropped == 2
    assert drops == [1, 1]
    assert [sub.get(0.1)["seq"] for _ in range(3)] == [2, 3, 4]
    with pytest.raises(queue.Empty):
        sub.get(0.05)


def test_subscription_never_drops_phase_milestones():
    sub = Subscription(maxsize=2)
    sub.feed({"kind": "phase", "phase": "start"})
    for seq in range(10):
        sub.feed({"kind": "event", "seq": seq})
    sub.feed({"kind": "phase", "phase": "finish"})
    sub.close()
    payloads = list(sub)
    phases = [p["phase"] for p in payloads if p["kind"] == "phase"]
    assert phases == ["start", "finish"]   # survived 10x overflow
    assert sub.dropped == 10               # every samplable event lost
    # end-of-stream is sticky: reads after exhaustion keep returning None
    assert sub.get(0.1) is None


def test_subscription_all_milestones_exceed_bound_rather_than_drop():
    sub = Subscription(maxsize=2)
    for index in range(5):
        sub.feed({"kind": "phase", "phase": f"p{index}"})
    sub.close()
    assert [p["phase"] for p in sub] == [f"p{i}" for i in range(5)]
    assert sub.dropped == 0


def test_stream_drops_feed_the_registry():
    with Service(workers=1) as svc:
        job = svc.submit(JobSpec(experiment="fig04", stream_interval=50))
        sub = svc.subscribe(job, maxsize=4)   # deliberately tiny
        job.result(timeout=300)
        # drained only after the fact: milestones survived, every drop
        # was counted in both the subscription and the registry
        payloads = list(sub)
        assert any(p.get("kind") == "phase" for p in payloads)
        assert sub.dropped > 0
        assert svc.registry.value("stream_dropped_total") == sub.dropped


# ----------------------------------------------------------------------
# watchdog + top + no-telemetry surfaces
# ----------------------------------------------------------------------

def test_watchdog_warnings_render_as_labeled_counters():
    reg = MetricsRegistry()
    Service._declare_metrics(reg)
    # what WorkerPool.poll does as workers report per-job pathologies
    for kind, count in (("livelock", 2), ("mshr_saturation", 1),
                        ("livelock", 1)):
        reg.inc("watchdog_warnings_total", count, kind=kind)
    assert reg.value("watchdog_warnings_total", kind="livelock") == 3
    rendered = reg.render()
    assert ('repro_svc_watchdog_warnings_total{kind="livelock"} 3'
            in rendered)
    assert ('repro_svc_watchdog_warnings_total{kind="mshr_saturation"} 1'
            in rendered)


def test_metrics_dict_carries_watchdog_and_snapshot():
    with Service(workers=1) as svc:
        svc.submit(JobSpec(experiment="sleep:0")).result(timeout=30)
        metrics = svc.metrics()
    assert metrics["watchdog"] == {}
    assert _series_value(metrics["telemetry"],
                         "jobs_completed_total") == 1


def test_render_top_frame():
    with Service(workers=1) as svc:
        svc.submit(JobSpec(experiment="sleep:0")).result(timeout=30)
        first = svc.metrics()
        second = svc.metrics()
        frame = render_top(second, previous=first, dt=1.0,
                           address="127.0.0.1:7791", color=False,
                           clear=False)
    assert "repro.svc top — 127.0.0.1:7791" in frame
    assert "completed=1" in frame
    assert "p99=" in frame
    assert "busy=0/1" in frame
    # the clear variant leads with the ANSI home+clear sequence
    assert render_top(second, color=False,
                      clear=True).startswith("\x1b[H\x1b[2J")


def test_service_without_telemetry_still_works():
    with Service(workers=1, telemetry=False) as svc:
        job = svc.submit(JobSpec(experiment="sleep:0"))
        job.result(timeout=30)
        metrics = svc.metrics()
        assert metrics["completed"] == 1
        assert metrics["telemetry"] is None
        assert svc.registry is None and svc.ledger is None
        with pytest.raises(RuntimeError):
            svc.prometheus()
        assert svc.history() == []


# ----------------------------------------------------------------------
# explain --ledger integration
# ----------------------------------------------------------------------

def test_explain_resolves_job_from_ledger(tmp_path, capsys):
    from repro.obs.capture import CaptureSpec
    from repro.obs.explain import main as explain_main

    ledger = tmp_path / "runs.jsonl"
    events = tmp_path / "t.jsonl"
    with Service(workers=1, ledger=ledger) as svc:
        job = svc.submit(JobSpec(
            experiment="fig04",
            capture=CaptureSpec(events_path=str(events), job_scoped=True)))
        assert job.result(timeout=300)["all_ok"]
    entry = RunLedger.find_job(ledger, job.id)
    scoped = entry["capture"]["events"]
    assert f"job{job.id}" in scoped and "fig04" in scoped
    rc = explain_main(["--ledger", str(ledger), "--job", str(job.id),
                       "--top", "1"])
    out = capsys.readouterr().out
    assert rc == 0
    assert f"service job {job.id} (fig04/ci)" in out
    assert "host time: end_to_end=" in out
    assert "why-slow (repro.obs.critpath)" in out   # the in-sim report
    assert "blame:" in out


def test_explain_ledger_missing_job_exits_2(tmp_path, capsys):
    from repro.obs.explain import main as explain_main

    ledger = tmp_path / "runs.jsonl"
    ledger.write_text("")
    assert explain_main(["--ledger", str(ledger), "--job", "999999"]) == 2
    assert "not found" in capsys.readouterr().err
