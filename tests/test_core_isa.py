"""Unit tests for the X-Action ISA encoding."""

import pytest

from repro.core import IMM, MSG, Action, ActionCategory, Opcode, Operand, R
from repro.core.isa import OPCODE_CATEGORY


def test_every_opcode_has_a_category():
    for opcode in Opcode:
        assert opcode in OPCODE_CATEGORY


def test_category_assignments_match_paper_groups():
    assert OPCODE_CATEGORY[Opcode.ADD] is ActionCategory.AGEN
    assert OPCODE_CATEGORY[Opcode.ENQ] is ActionCategory.QUEUE
    assert OPCODE_CATEGORY[Opcode.ALLOCM] is ActionCategory.META
    assert OPCODE_CATEGORY[Opcode.BEQ] is ActionCategory.CONTROL
    assert OPCODE_CATEGORY[Opcode.ALLOCD] is ActionCategory.DATA


def test_paper_action_set_is_complete():
    names = {o.value for o in Opcode}
    # Figure 8's table, verbatim
    for expected in ("add and or xor addi inc dec shl shr sra srl not "
                     "allocR enq deq read-data write-data peek allocM "
                     "deallocM update state bmiss bhit beq bnz blt bge "
                     "ble allocD deallocD read write").split():
        assert expected in names


def test_register_operand():
    r = R(3)
    assert r.kind == "r" and r.value == 3
    assert repr(r) == "R3"


def test_immediate_operand():
    imm = IMM(64)
    assert imm.kind == "imm"
    assert repr(imm) == "#64"


def test_msg_operand():
    m = MSG("key")
    assert m.kind == "msg"
    assert repr(m) == "msg.key"


def test_operand_validation():
    with pytest.raises(ValueError):
        Operand("bogus", 1)
    with pytest.raises(ValueError):
        R(-1)
    with pytest.raises(ValueError):
        Operand("msg", 5)


def test_action_attrs_lookup():
    a = Action(Opcode.STATE, attrs=(("done", True), ("state", "Valid")))
    assert a.attr("state") == "Valid"
    assert a.attr("done") is True
    assert a.attr("missing", 42) == 42


def test_action_with_target():
    a = Action(Opcode.BEQ, a=R(0), b=IMM(0), target=1)
    b = a.with_target(7)
    assert b.target == 7
    assert a.target == 1  # original untouched
    assert b.op is Opcode.BEQ


def test_action_category_property():
    assert Action(Opcode.SHL, dst=R(0), a=R(0), b=IMM(1)).category \
        is ActionCategory.AGEN


def test_action_repr_mentions_operands():
    text = repr(Action(Opcode.ADD, dst=R(0), a=R(1), b=IMM(2)))
    assert "add" in text and "R1" in text and "#2" in text
