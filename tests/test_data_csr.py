"""Unit + property tests for sparse matrices and SpGEMM references."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.data import (
    CSRLayout,
    SparseMatrix,
    spgemm_gustavson,
    spgemm_inner,
    spgemm_outer,
)
from repro.mem import MemoryImage


def small():
    return SparseMatrix.from_dense([
        [1.0, 0.0, 2.0],
        [0.0, 0.0, 3.0],
        [4.0, 5.0, 0.0],
    ])


def test_from_dense_shape_and_nnz():
    m = small()
    assert (m.rows, m.cols, m.nnz) == (3, 3, 5)


def test_row_view():
    idx, vals = small().row(0)
    assert idx == [0, 2]
    assert vals == [1.0, 2.0]


def test_row_nnz():
    m = small()
    assert [m.row_nnz(r) for r in range(3)] == [2, 1, 2]


def test_from_triplets_sums_duplicates():
    m = SparseMatrix.from_triplets(2, 2, [(0, 0, 1.0), (0, 0, 2.5)])
    assert m.nnz == 1
    assert m.to_dict()[(0, 0)] == 3.5


def test_triplet_bounds_checked():
    with pytest.raises(ValueError):
        SparseMatrix.from_triplets(2, 2, [(2, 0, 1.0)])


def test_invalid_indptr_rejected():
    with pytest.raises(ValueError):
        SparseMatrix(2, 2, [0, 2, 1], [0, 1], [1.0, 1.0])
    with pytest.raises(ValueError):
        SparseMatrix(2, 2, [0, 1], [0], [1.0])  # wrong indptr length


def test_column_bounds_checked():
    with pytest.raises(ValueError):
        SparseMatrix(1, 2, [0, 1], [5], [1.0])


def test_transpose_roundtrip():
    m = small()
    assert m.transpose().transpose().equals(m)


def test_transpose_values():
    t = small().transpose()
    assert t.to_dict()[(2, 1)] == 3.0


def test_identity():
    i = SparseMatrix.identity(4)
    assert i.nnz == 4
    assert i.to_dense()[2][2] == 1.0


def test_dense_roundtrip():
    dense = [[0.0, 1.5], [2.5, 0.0]]
    assert SparseMatrix.from_dense(dense).to_dense() == dense


def test_equals_tolerance():
    a = SparseMatrix.from_dense([[1.0]])
    b = SparseMatrix.from_dense([[1.0 + 1e-12]])
    assert a.equals(b)
    assert not a.equals(SparseMatrix.from_dense([[2.0]]))


# ----------------------------------------------------------------------
# SpGEMM references
# ----------------------------------------------------------------------

def dense_matmul(a, b):
    da, db = a.to_dense(), b.to_dense()
    n, k, m = a.rows, a.cols, b.cols
    return [[sum(da[i][x] * db[x][j] for x in range(k)) for j in range(m)]
            for i in range(n)]


def assert_matches_dense(result, a, b):
    expected = dense_matmul(a, b)
    got = result.to_dense()
    for row_e, row_g in zip(expected, got):
        for e, g in zip(row_e, row_g):
            assert g == pytest.approx(e, abs=1e-9)


def test_identity_multiplication():
    m = small()
    eye = SparseMatrix.identity(3)
    for algo in (spgemm_inner, spgemm_outer, spgemm_gustavson):
        assert algo(m, eye).equals(m)
        assert algo(eye, m).equals(m)


def test_three_algorithms_agree_small():
    a = small()
    b = small().transpose()
    r1 = spgemm_inner(a, b)
    r2 = spgemm_outer(a, b)
    r3 = spgemm_gustavson(a, b)
    assert r1.equals(r2)
    assert r2.equals(r3)
    assert_matches_dense(r3, a, b)


def test_shape_mismatch_rejected():
    a = SparseMatrix.identity(2)
    b = SparseMatrix.identity(3)
    for algo in (spgemm_inner, spgemm_outer, spgemm_gustavson):
        with pytest.raises(ValueError):
            algo(a, b)


def test_empty_matrix_product():
    a = SparseMatrix(2, 2, [0, 0, 0], [], [])
    b = SparseMatrix.identity(2)
    assert spgemm_gustavson(a, b).nnz == 0


@st.composite
def sparse_matrices(draw, max_dim=6):
    rows = draw(st.integers(1, max_dim))
    cols = draw(st.integers(1, max_dim))
    n_triplets = draw(st.integers(0, rows * cols))
    trips = [
        (draw(st.integers(0, rows - 1)), draw(st.integers(0, cols - 1)),
         draw(st.floats(min_value=-4, max_value=4,
                        allow_nan=False, allow_infinity=False)))
        for _ in range(n_triplets)
    ]
    return SparseMatrix.from_triplets(rows, cols, trips)


@settings(max_examples=30, deadline=None)
@given(sparse_matrices(), st.integers(1, 6))
def test_spgemm_algorithms_agree_property(a, cols):
    import random
    rng = random.Random(a.nnz * 31 + cols)
    trips = [(r, c, rng.uniform(-2, 2))
             for r in range(a.cols) for c in range(cols) if rng.random() < 0.5]
    b = SparseMatrix.from_triplets(a.cols, cols, trips)
    r_inner = spgemm_inner(a, b)
    r_outer = spgemm_outer(a, b)
    r_gus = spgemm_gustavson(a, b)
    assert r_inner.equals(r_outer, tol=1e-7)
    assert r_outer.equals(r_gus, tol=1e-7)


@settings(max_examples=30, deadline=None)
@given(sparse_matrices())
def test_transpose_involution_property(m):
    assert m.transpose().transpose().equals(m)


# ----------------------------------------------------------------------
# memory-image layout
# ----------------------------------------------------------------------

def test_layout_roundtrip():
    image = MemoryImage()
    m = small()
    layout = CSRLayout.build(image, m)
    for r in range(m.rows):
        idx, vals = layout.read_row(image, r)
        eidx, evals = m.row(r)
        assert idx == eidx
        assert vals == pytest.approx(evals)


def test_layout_entry_addresses():
    image = MemoryImage()
    layout = CSRLayout.build(image, small())
    assert layout.row_ptr_entry(2) == layout.row_ptr_addr + 8
    assert layout.col_idx_entry(3) == layout.col_idx_addr + 12
    assert layout.value_entry(1) == layout.values_addr + 8


def test_packed_pairs_layout():
    image = MemoryImage()
    m = small()
    layout = CSRLayout.build(image, m, packed=True)
    assert layout.pairs_addr != 0
    # read back row 2's pairs
    lo, hi = m.indptr[2], m.indptr[3]
    raw = image.read_block(layout.pairs_addr + 16 * lo, 16 * (hi - lo))
    pairs = CSRLayout.parse_pairs(raw)
    assert pairs == [(0, pytest.approx(4.0)), (1, pytest.approx(5.0))]


def test_parse_pairs_empty():
    assert CSRLayout.parse_pairs(b"") == []
