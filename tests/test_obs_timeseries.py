"""Tests for windowed time-series metrics (`repro.obs.timeseries`)."""

import io
import json

import pytest

from repro.obs import (
    DRAMComplete,
    DRAMIssue,
    EventBus,
    Hit,
    Miss,
    RequestArrive,
    TimeSeriesProcessor,
    WalkerDispatch,
    WalkerRetire,
    write_csv,
)
from repro.obs.timeseries import CSV_COLUMNS


def _sampled_bus(window=10):
    bus = EventBus()
    return bus, bus.attach(TimeSeriesProcessor(window))


def _issue(cycle, addr=0, write=False):
    return DRAMIssue(cycle=cycle, component="dram", addr=addr,
                     is_write=write, bank=0, row_result="row_hits",
                     complete_at=cycle + 20, nbytes=64)


def test_window_must_be_positive():
    with pytest.raises(ValueError):
        TimeSeriesProcessor(0)


def test_windows_tile_and_count():
    bus, ts = _sampled_bus(window=10)
    for cycle in (0, 3, 9):       # window [0, 10)
        bus.publish(RequestArrive(cycle=cycle, component="ctl",
                                  tag=(cycle,), op="load"))
        bus.publish(Hit(cycle=cycle, component="ctl", tag=(cycle,)))
    bus.publish(Miss(cycle=25, component="ctl", tag=(9,), op="L"))
    ts.close()
    assert [r["window_start"] for r in ts.rows] == [0, 10, 20]
    first, gap, last = ts.rows
    assert first["requests"] == 3 and first["hits"] == 3
    assert first["hit_rate"] == 1.0
    assert gap["requests"] == 0 and gap["hit_rate"] == 0.0
    assert last["misses"] == 1 and last["hit_rate"] == 0.0


def test_hit_rate_mixes_hits_and_misses():
    bus, ts = _sampled_bus(window=100)
    bus.publish(Hit(cycle=1, component="ctl", tag=(1,)))
    bus.publish(Hit(cycle=2, component="ctl", tag=(2,)))
    bus.publish(Miss(cycle=3, component="ctl", tag=(3,), op="L"))
    bus.publish(Miss(cycle=4, component="ctl", tag=(4,), op="L"))
    ts.close()
    assert ts.rows[0]["hit_rate"] == 0.5


def test_walker_occupancy_levels_cross_windows():
    bus, ts = _sampled_bus(window=10)
    bus.publish(Miss(cycle=1, component="ctl", tag=(1,), op="L"))
    bus.publish(Miss(cycle=2, component="ctl", tag=(2,), op="L"))
    # dispatch of an already-tracked walker is idempotent
    bus.publish(WalkerDispatch(cycle=2, component="ctl", tag=(2,),
                               routine="R"))
    bus.publish(WalkerRetire(cycle=15, component="ctl", tag=(1,),
                             found=True, lifetime=14))
    bus.publish(WalkerRetire(cycle=25, component="ctl", tag=(2,),
                             found=True, lifetime=23))
    ts.close()
    w0, w1, w2 = ts.rows
    assert w0["walkers_peak"] == 2 and w0["walkers_end"] == 2
    assert w1["walkers_peak"] == 2 and w1["walkers_end"] == 1
    assert w2["walkers_end"] == 0 and w2["retires"] == 1


def test_dram_bandwidth_and_outstanding():
    bus, ts = _sampled_bus(window=100)
    bus.publish(_issue(0, addr=0))
    bus.publish(_issue(1, addr=64))
    bus.publish(_issue(2, addr=128, write=True))
    bus.publish(DRAMComplete(cycle=30, component="dram", addr=0,
                             latency=30))
    bus.publish(DRAMComplete(cycle=130, component="dram", addr=64,
                             latency=129))
    ts.close()
    w0, w1 = ts.rows
    assert w0["dram_reads"] == 2 and w0["dram_writes"] == 1
    assert w0["dram_bytes"] == 192
    assert w0["dram_bw"] == pytest.approx(1.92)
    assert w0["mshr_peak"] == 3 and w0["mshr_end"] == 2
    assert w1["mshr_peak"] == 2 and w1["mshr_end"] == 1


def test_close_is_idempotent_and_flushes_partial_window():
    bus, ts = _sampled_bus(window=1000)
    bus.publish(Hit(cycle=42, component="ctl", tag=(1,)))
    ts.close()
    ts.close()
    assert len(ts.rows) == 1
    assert ts.rows[0]["window_end"] == 1000


def test_no_events_no_rows():
    _, ts = _sampled_bus()
    ts.close()
    assert ts.rows == []


def test_json_export_roundtrip():
    bus, ts = _sampled_bus(window=10)
    bus.publish(Hit(cycle=1, component="ctl", tag=(1,)))
    ts.close()
    payload = json.loads(ts.to_json())
    assert payload["window"] == 10
    assert payload["rows"][0]["hits"] == 1


def test_csv_export_multiple_runs():
    bus_a, ts_a = _sampled_bus(window=10)
    bus_b, ts_b = _sampled_bus(window=10)
    bus_a.publish(Hit(cycle=1, component="ctl", tag=(1,)))
    bus_b.publish(Miss(cycle=11, component="ctl", tag=(2,), op="L"))
    out = io.StringIO()
    rows = write_csv(out, [("0", ts_a), ("1", ts_b)])
    lines = out.getvalue().strip().splitlines()
    # one window per run (the series starts at each run's first event)
    assert rows == 2
    assert lines[0] == "run," + ",".join(CSV_COLUMNS)
    assert all(len(line.split(",")) == len(CSV_COLUMNS) + 1
               for line in lines[1:])
    assert lines[1].startswith("0,0,10,")
    assert lines[-1].startswith("1,10,20,")


def test_csv_export_to_path(tmp_path):
    bus, ts = _sampled_bus(window=10)
    bus.publish(Hit(cycle=1, component="ctl", tag=(1,)))
    path = tmp_path / "ts.csv"
    write_csv(str(path), [(0, ts)])
    assert path.read_text().startswith("run,window_start")


def test_real_run_totals_match_aggregates(mini_system):
    ts = mini_system.observe(TimeSeriesProcessor(window=50))
    addr = mini_system.image.alloc_u64_array(list(range(8)))
    for i in range(8):
        mini_system.load((i,), walk_fields={"addr": addr + 8 * i})
    mini_system.run()
    for i in range(8):
        mini_system.load((i,), walk_fields={"addr": addr + 8 * i})
    mini_system.run()
    ts.close()
    assert ts.rows
    assert sum(r["misses"] for r in ts.rows) == 8
    assert sum(r["hits"] for r in ts.rows) == 8
    assert sum(r["retires"] for r in ts.rows) == 8
    assert sum(r["dram_reads"] for r in ts.rows) >= 8
    assert ts.rows[-1]["walkers_end"] == 0
    assert ts.rows[-1]["mshr_end"] == 0
    # windows are contiguous
    for prev, cur in zip(ts.rows, ts.rows[1:]):
        assert cur["window_start"] == prev["window_end"]
