"""Cross-module integration and property tests.

The controller invariant checked throughout: every meta request receives
exactly one response, and every found response carries the functionally
correct data — under random traces, random geometry, and structural
pressure (1-way sets, tiny data RAMs, single contexts).
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import XCacheConfig, XCacheSystem
from repro.data import HashIndex
from repro.dsa.walkers import build_hash_walker


def run_probe_trace(probes, pairs, *, ways=4, sets=16, num_active=8,
                    data_sectors=256, num_exe=2, sched_window=8,
                    num_buckets=64):
    config = XCacheConfig(ways=ways, sets=sets, data_sectors=data_sectors,
                          num_active=num_active, num_exe=num_exe,
                          sched_window=sched_window, xregs_per_walker=16)
    system = XCacheSystem(config, build_hash_walker(num_buckets, 7))
    index = HashIndex.build(system.image, pairs, num_buckets)
    for key in probes:
        system.load((key,), walk_fields={"table": index.table_addr})
    responses = system.run()
    assert len(responses) == len(probes)
    expected = dict(pairs)
    by_uid = {}
    for resp in responses:
        key = resp.request.tag[0]
        if key in expected:
            assert resp.found, f"key {key} should be found"
            got = int.from_bytes(resp.data[:8], "little")
            assert got == expected[key]
        else:
            assert not resp.found
        assert resp.request.uid not in by_uid  # exactly one response each
        by_uid[resp.request.uid] = resp
    return system


def test_mixed_hit_miss_trace():
    pairs = [(k, 2000 + k) for k in range(1, 33)]
    probes = [1, 2, 1, 99, 3, 1, 2, 99, 4]
    run_probe_trace(probes, pairs)


def test_direct_mapped_same_set_storm():
    # every tag maps to set (key & 0): constant structural pressure
    pairs = [(k, k * 3) for k in range(1, 17)]
    probes = list(range(1, 17)) * 3
    system = run_probe_trace(probes, pairs, ways=1, sets=1, num_active=4)
    assert system.controller.stats.get("stall_set_conflict") > 0


def test_single_context_serializes_but_completes():
    pairs = [(k, k) for k in range(1, 25)]
    run_probe_trace(list(range(1, 25)), pairs, num_active=1)


def test_tiny_data_ram_forces_reclaim():
    pairs = [(k, k) for k in range(1, 33)]
    system = run_probe_trace(list(range(1, 33)) * 2, pairs, data_sectors=4,
                             ways=8, sets=8)
    assert system.controller.stats.get("capacity_evictions") > 0


def test_head_of_line_window_one_still_correct():
    pairs = [(k, 7 * k) for k in range(1, 17)]
    probes = [1, 2, 3, 1, 2, 3] * 4
    run_probe_trace(probes, pairs, sched_window=1)


@settings(max_examples=20, deadline=None)
@given(
    keys=st.lists(st.integers(min_value=1, max_value=200), min_size=1,
                  max_size=30, unique=True),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_random_trace_equivalence(keys, seed):
    """Random probe traces always match the functional hash index."""
    rng = random.Random(seed)
    pairs = [(k, rng.randrange(1 << 32)) for k in keys]
    probes = [rng.choice(keys + [997, 998]) for _ in range(40)]
    run_probe_trace(probes, pairs,
                    ways=rng.choice([1, 2, 4]),
                    sets=rng.choice([4, 16]),
                    num_active=rng.choice([1, 2, 8]),
                    num_exe=rng.choice([1, 4]),
                    sched_window=rng.choice([1, 8]))


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_random_spgemm_equivalence(seed):
    """Random small SpGEMM runs always match the reference product."""
    from repro.core.config import table3_config
    from repro.dsa import SpGEMMXCacheModel
    from repro.workloads import random_sparse
    rng = random.Random(seed)
    n = rng.randrange(8, 24)
    a = random_sparse(n, n, max(1, n * 2), seed=seed)
    b = random_sparse(n, n, max(1, n * 2), seed=seed + 1)
    algo = rng.choice(["outer", "gustavson"])
    cfg = table3_config("sparch", scale=0.125)
    result = SpGEMMXCacheModel(a, b, algo, config=cfg).run()
    assert result.checks_passed


def test_inner_product_dataflow_validates():
    from repro.core.config import table3_config
    from repro.dsa import SpGEMMXCacheModel
    from repro.workloads import dense_spgemm_input
    a, b = dense_spgemm_input(n=40, nnz_per_row=4, seed=4)
    result = SpGEMMXCacheModel(a, b, "inner",
                               config=table3_config("sparch",
                                                    scale=0.125)).run()
    assert result.checks_passed
    assert result.dsa == "inner"
    # inner product probes columns near-exhaustively -> high reuse
    assert result.hit_rate > 0.8


def test_inner_product_requires_b_for_trace():
    from repro.dsa import element_trace
    from repro.data import SparseMatrix
    with pytest.raises(ValueError):
        element_trace(SparseMatrix.identity(4), "inner")


def test_interleaved_loads_and_stores():
    """Stores (event walker) and takes interleave correctly."""
    import struct
    from repro.dsa.walkers import build_event_walker
    config = XCacheConfig(ways=1, sets=32, data_sectors=64,
                          tag_fields=("vertex",), wlen=1)
    system = XCacheSystem(config, build_event_walker(), store_merge="fadd")

    def bits(x):
        return struct.unpack("<Q", struct.pack("<d", x))[0]

    expected = {}
    rng = random.Random(5)
    for _ in range(50):
        v = rng.randrange(8)
        delta = rng.uniform(0.1, 1.0)
        expected[v] = expected.get(v, 0.0) + delta
        system.store((v,), bits(delta))
    system.run()
    for v, total in expected.items():
        system.load((v,), take=True)
        system.run()
        got = struct.unpack("<d", system.responses[-1].data[:8])[0]
        assert got == pytest.approx(total)
