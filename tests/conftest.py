"""Shared fixtures: tiny walkers, systems, and workloads for fast tests."""

import pytest

from repro.core import (
    EV_FILL,
    EV_META_LOAD,
    IMM,
    MSG,
    R,
    Transition,
    WalkerSpec,
    XCacheConfig,
    XCacheSystem,
    compile_walker,
    op,
)


@pytest.fixture
def mini_walker():
    """One-block fetch walker: tag -> 8 bytes at msg['addr']."""
    spec = WalkerSpec(
        name="mini",
        transitions=(
            Transition("Default", EV_META_LOAD, (
                op.allocM(),
                op.mov(R(0), MSG("addr")),
                op.enq_dram(addr=R(0)),
                op.state("Wait"),
            )),
            Transition("Wait", EV_FILL, (
                op.and_(R(1), R(0), IMM(63)),
                op.allocD(R(2), IMM(1)),
                op.write(R(2), R(1), nbytes=8, from_msg=True),
                op.update("sector_start", R(2)),
                op.addi(R(3), R(2), 1),
                op.update("sector_end", R(3)),
                op.finish(),
            )),
        ),
    )
    return compile_walker(spec)


@pytest.fixture
def mini_config():
    return XCacheConfig(ways=2, sets=8, data_sectors=128, num_active=4,
                        num_exe=2, xregs_per_walker=8)


@pytest.fixture
def mini_system(mini_walker, mini_config):
    return XCacheSystem(mini_config, mini_walker)
