"""Unit tests for the `repro.obs` event bus and event taxonomy."""

import dataclasses

import pytest

from repro.obs import (
    ALL_EVENT_TYPES,
    EVENT_TYPES,
    EventBus,
    EventProcessor,
    Hit,
    Miss,
    NullProcessor,
    WalkerRetire,
    event_fields,
)


def _hit(cycle=1, **kw):
    kw.setdefault("tag", (1,))
    return Hit(cycle=cycle, component="ctl", **kw)


def _miss(cycle=1):
    return Miss(cycle=cycle, component="ctl", tag=(1,), op="MetaLoad")


# ----------------------------------------------------------------------
# events
# ----------------------------------------------------------------------
def test_events_are_frozen():
    ev = _hit()
    with pytest.raises(dataclasses.FrozenInstanceError):
        ev.cycle = 2


def test_wire_names_unique_and_complete():
    assert len(EVENT_TYPES) == len(ALL_EVENT_TYPES)
    for name, cls in EVENT_TYPES.items():
        assert cls.name == name
        assert name == name.lower()


def test_event_fields_cached_and_ordered():
    assert event_fields(Hit) == ("cycle", "component", "tag", "store",
                                 "take", "load_to_use", "req_id", "status")
    assert event_fields(Hit) is event_fields(Hit)


# ----------------------------------------------------------------------
# subscription / publication
# ----------------------------------------------------------------------
def test_typed_subscription_filters():
    bus = EventBus()
    got = []
    bus.subscribe(got.append, types=(Hit,))
    bus.publish(_hit())
    bus.publish(_miss())
    assert len(got) == 1 and isinstance(got[0], Hit)


def test_catch_all_sees_everything():
    bus = EventBus()
    got = []
    bus.subscribe(got.append)
    bus.publish(_hit())
    bus.publish(_miss())
    assert [type(e) for e in got] == [Hit, Miss]


def test_delivery_order_catch_all_then_typed_attachment_order():
    bus = EventBus()
    order = []
    bus.subscribe(lambda e: order.append("typed1"), types=(Hit,))
    bus.subscribe(lambda e: order.append("all1"))
    bus.subscribe(lambda e: order.append("typed2"), types=(Hit,))
    bus.subscribe(lambda e: order.append("all2"))
    bus.publish(_hit())
    assert order == ["all1", "all2", "typed1", "typed2"]


def test_subscribe_rejects_non_event_types():
    bus = EventBus()
    with pytest.raises(TypeError):
        bus.subscribe(lambda e: None, types=(int,))


def test_one_handler_many_types():
    bus = EventBus()
    got = []
    bus.subscribe(got.append, types=(Hit, WalkerRetire))
    bus.publish(_hit())
    bus.publish(_miss())
    bus.publish(WalkerRetire(cycle=9, component="ctl", tag=(1,),
                             found=True, lifetime=8))
    assert [type(e) for e in got] == [Hit, WalkerRetire]


# ----------------------------------------------------------------------
# processors: attach / detach / close
# ----------------------------------------------------------------------
class _Recorder(EventProcessor):
    def __init__(self, types=None):
        self.types = types
        self.got = []
        self.closed = False

    def subscriptions(self):
        return self.types

    def handle(self, event):
        self.got.append(event)

    def close(self):
        self.closed = True


def test_attach_uses_subscriptions():
    bus = EventBus()
    typed = bus.attach(_Recorder(types=(Miss,)))
    everything = bus.attach(_Recorder())
    bus.publish(_hit())
    bus.publish(_miss())
    assert [type(e) for e in typed.got] == [Miss]
    assert len(everything.got) == 2
    assert bus.processors == (typed, everything)


def test_detach_removes_all_subscriptions():
    bus = EventBus()
    p = bus.attach(_Recorder(types=(Hit, Miss)))
    assert bus.subscriber_count == 2
    bus.detach(p)
    assert bus.subscriber_count == 0
    assert bus.processors == ()
    bus.publish(_hit())
    assert p.got == []


def test_detach_leaves_other_processors():
    bus = EventBus()
    a = bus.attach(_Recorder(types=(Hit,)))
    b = bus.attach(_Recorder(types=(Hit,)))
    bus.detach(a)
    bus.publish(_hit())
    assert a.got == [] and len(b.got) == 1


def test_close_closes_processors():
    bus = EventBus()
    p = bus.attach(_Recorder())
    bus.attach(NullProcessor())  # close() is a no-op, must not raise
    bus.close()
    assert p.closed


def test_unarmed_publish_site_is_one_check():
    # the contract components rely on: `if bus is not None` guards the
    # entire publish path, so a None bus means no event construction
    bus = None
    if bus is not None:  # pragma: no cover - the guarded site
        raise AssertionError("unreachable")


# ----------------------------------------------------------------------
# resolved-handler cache (the armed publish fast path)
# ----------------------------------------------------------------------
def test_resolved_cache_invalidated_by_late_subscribe():
    bus = EventBus()
    early, late = [], []
    bus.subscribe(early.append, types=(Hit,))
    bus.publish(_hit())            # primes the Hit handler cache
    bus.subscribe(late.append, types=(Hit,))
    bus.publish(_hit())
    assert len(early) == 2 and len(late) == 1


def test_resolved_cache_invalidated_by_detach():
    bus = EventBus()
    p = bus.attach(_Recorder(types=(Hit,)))
    survivor = bus.attach(_Recorder(types=(Hit,)))
    bus.publish(_hit())            # primes the cache with both handlers
    bus.detach(p)
    bus.publish(_hit())
    assert len(p.got) == 1 and len(survivor.got) == 2


def test_resolved_cache_preserves_delivery_order():
    bus = EventBus()
    order = []
    bus.subscribe(lambda ev: order.append("typed"), types=(Hit,))
    bus.subscribe(lambda ev: order.append("catch_all"))
    bus.publish(_hit())
    bus.publish(_hit())            # second publish rides the cache
    # catch-all always delivers before typed, cached or not
    assert order == ["catch_all", "typed"] * 2


def test_resolved_cache_handles_unsubscribed_types():
    bus = EventBus()
    bus.subscribe(lambda ev: None, types=(Hit,))
    bus.publish(_miss())           # no Miss subscribers: cached empty
    bus.publish(_miss())
    assert bus.subscriber_count == 1
