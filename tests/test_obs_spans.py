"""Tests for span assembly, critical-path blame, and the explain CLI."""

import json

import pytest

from repro.obs.critpath import (
    BLAME_BUCKETS,
    CritPathAggregator,
    blame_request,
    verify_request,
)
from repro.obs.events import (
    ALL_EVENT_TYPES,
    CacheAccess,
    CacheEvict,
    CacheFill,
    CacheModel,
    DRAMComplete,
    DRAMIssue,
    Evict,
    Fill,
    Hit,
    Merge,
    Miss,
    QueueStall,
    Reclaim,
    RequestArrive,
    RunEnd,
    RunStart,
    WalkerDispatch,
    WalkerRetire,
    WalkerWake,
    WalkerYield,
    event_from_json,
)
from repro.obs.explain import explain_report, replay_events, slo_summary
from repro.obs.export import event_to_dict
from repro.obs.spans import SpanAssembler


# ----------------------------------------------------------------------
# event_from_json round-trip
# ----------------------------------------------------------------------
def _one_of_each():
    """One instance per event type, every field set to a non-default."""
    return [
        RunStart(cycle=1, component="sim"),
        RunEnd(cycle=2, component="sim", events_executed=9),
        RequestArrive(cycle=3, component="c", tag=(1, 2), op="store",
                      req_id=4),
        Hit(cycle=5, component="c", tag=(3,), store=True, take=True,
            load_to_use=7, req_id=8, status=0),
        Miss(cycle=9, component="c", tag=(4,), op="load", req_id=10,
             walk_id=11, set_index=5),
        Merge(cycle=12, component="c", tag=(5,), req_id=13, walk_id=14),
        WalkerDispatch(cycle=15, component="c", tag=(6,), routine="r",
                       walk_id=16),
        WalkerWake(cycle=17, component="c", tag=(7,), reason="e",
                   walk_id=18),
        WalkerYield(cycle=19, component="c", tag=(8,), routine="r2",
                    action_costs=(1, 2, 3, 4, 5), fills=2, walk_id=20),
        WalkerRetire(cycle=21, component="c", tag=(9,), found=True,
                     lifetime=22, action_costs=(5, 4, 3, 2, 1),
                     walk_id=23, served=(10, 13)),
        DRAMIssue(cycle=24, component="d", addr=64, is_write=True,
                  bank=2, row_result="row_hits", complete_at=40,
                  nbytes=32, walk_id=25),
        DRAMComplete(cycle=26, component="d", addr=128, latency=27,
                     walk_id=28),
        Fill(cycle=29, component="c", tag=(10,), addr=256, nbytes=64,
             walk_id=30),
        Evict(cycle=31, component="c", tag=(11,), sectors=3),
        Reclaim(cycle=32, component="c", nsectors=4),
        QueueStall(cycle=33, component="c", tag=(12,),
                   reason="no_context", req_id=34),
        CacheModel(cycle=35, component="c", kind="addr", ways=4,
                   sets=64, block_bytes=32, tag_class="addr"),
        CacheFill(cycle=36, component="c", tag=(13,), set_index=6,
                  way=1),
        CacheEvict(cycle=37, component="c", tag=(14,), set_index=7,
                   way=2, reason="dealloc"),
        CacheAccess(cycle=38, component="c", tag=(4096,), set_index=8,
                    outcome="merge", is_write=True),
    ]


def test_event_from_json_round_trips_all_types():
    originals = _one_of_each()
    assert len(originals) == len(ALL_EVENT_TYPES)
    for original in originals:
        wire = json.loads(json.dumps(event_to_dict(original, {"run": 3})))
        rebuilt = event_from_json(wire)
        assert rebuilt == original                   # run stamp ignored
        assert type(rebuilt) is type(original)


def test_event_from_json_defaults_missing_fields():
    ev = event_from_json({"event": "hit", "cycle": 7, "component": "c"})
    assert isinstance(ev, Hit)
    assert ev.req_id == -1 and ev.status == 1 and ev.tag == ()


def test_event_from_json_unknown_wire_name_raises():
    with pytest.raises(KeyError):
        event_from_json({"event": "not_a_thing", "cycle": 0,
                         "component": "c"})


# ----------------------------------------------------------------------
# span assembly on a synthetic stream
# ----------------------------------------------------------------------
def _merged_walk_stream():
    """Two requests: an origin miss plus a merge, answered by one walk."""
    return [
        RequestArrive(cycle=0, component="ctl", tag=(1,), op="load",
                      req_id=1),
        RequestArrive(cycle=0, component="ctl", tag=(1,), op="load",
                      req_id=2),
        QueueStall(cycle=1, component="ctl", tag=(1,),
                   reason="no_context", req_id=1),
        Miss(cycle=2, component="ctl", tag=(1,), op="load", req_id=1,
             walk_id=7),
        WalkerDispatch(cycle=3, component="ctl", tag=(1,), routine="r0",
                       walk_id=7),
        Merge(cycle=4, component="ctl", tag=(1,), req_id=2, walk_id=7),
        WalkerYield(cycle=5, component="ctl", tag=(1,), routine="r0",
                    fills=1, walk_id=7),
        DRAMIssue(cycle=5, component="dram", addr=64,
                  row_result="row_misses", complete_at=25, walk_id=7),
        Fill(cycle=25, component="ctl", tag=(1,), addr=64, walk_id=7),
        WalkerWake(cycle=25, component="ctl", tag=(1,), reason="fill",
                   walk_id=7),
        WalkerDispatch(cycle=26, component="ctl", tag=(1,), routine="r1",
                       walk_id=7),
        WalkerRetire(cycle=30, component="ctl", tag=(1,), found=True,
                     lifetime=28, walk_id=7, served=(1, 2)),
    ]


def test_merged_requests_share_one_walk_subtree():
    sink = []
    asm = SpanAssembler(sink=sink.append)
    for ev in _merged_walk_stream():
        asm.handle(ev)

    assert asm.requests_completed == 2
    assert asm.requests_open == 0 and asm.walks_open == 0
    span1 = next(s for s in sink if s.req_id == 1)
    span2 = next(s for s in sink if s.req_id == 2)
    assert span1.episodes[0].role == "origin"
    assert span2.episodes[0].role == "merge"
    # one shared WalkSpan object, not two copies
    assert span1.episodes[0].walk is span2.episodes[0].walk
    walk = span1.episodes[0].walk
    assert walk.riders == [1, 2] and walk.served == (1, 2)
    assert walk.routines == 2 and walk.fills == 1
    assert len(walk.dram) == 1 and walk.dram[0].complete == 25
    # phases tile [admitted, retired) exactly
    assert walk.phases[0].start == walk.admitted == 2
    assert walk.phases[-1].end == walk.retired == 30
    for prev, cur in zip(walk.phases, walk.phases[1:]):
        assert prev.end == cur.start
    assert walk.phase_cycles() == {"sched_wait": 2, "exec": 6,
                                   "dram_wait": 20}


def test_blame_conserves_and_classifies_on_synthetic_stream():
    agg = CritPathAggregator(top_k=2, verify=True)
    asm = SpanAssembler(sink=agg.add)
    for ev in _merged_walk_stream():
        asm.handle(ev)

    assert agg.conservation_ok, agg.mismatches
    blames = {span.req_id: blame for span, blame in agg.slowest()}
    # origin: 1 stall cycle reclassified out of the 2-cycle admit gap
    assert blames[1] == {"hit_path": 0, "sched_wait": 3, "exec": 6,
                         "dram": 20, "queue_stall": 1}
    # merge joined at 4: only the post-join slice of each phase counts
    assert blames[2] == {"hit_path": 0, "sched_wait": 5, "exec": 5,
                         "dram": 20, "queue_stall": 0}
    for span, blame in agg.slowest():
        assert sum(blame.values()) == span.latency == 30
        assert verify_request(span) == []


def test_dropped_span_accounting_at_cap():
    sink = []
    asm = SpanAssembler(sink=sink.append, max_kept=2)
    for i in range(5):
        asm.handle(RequestArrive(cycle=i, component="c", tag=(i,),
                                 op="load", req_id=i))
        asm.handle(Hit(cycle=i, component="c", tag=(i,), load_to_use=3,
                       req_id=i))
    assert asm.requests_completed == 5
    assert len(asm.completed) == 2          # retention capped...
    assert asm.dropped == 3
    assert len(sink) == 5                   # ...but the sink saw all 5


def test_max_kept_zero_is_stream_only():
    sink = []
    asm = SpanAssembler(sink=sink.append, max_kept=0)
    for i in range(3):
        asm.handle(RequestArrive(cycle=i, component="c", tag=(i,),
                                 op="load", req_id=i))
        asm.handle(Hit(cycle=i, component="c", tag=(i,), load_to_use=3,
                       req_id=i))
    assert len(sink) == 3
    assert asm.completed == [] and asm.dropped == 0


def test_uncorrelated_events_are_ignored():
    asm = SpanAssembler()
    asm.handle(RequestArrive(cycle=0, component="c", tag=(1,),
                             op="load"))            # req_id=-1
    asm.handle(Hit(cycle=1, component="c", tag=(1,), load_to_use=3))
    asm.handle(DRAMIssue(cycle=2, component="d", addr=0))  # unowned
    asm.handle(WalkerRetire(cycle=3, component="c", tag=(2,)))
    assert asm.requests_open == 0 and asm.requests_completed == 0


# ----------------------------------------------------------------------
# aggregation
# ----------------------------------------------------------------------
def test_aggregator_merge_folds_counts_and_topk():
    a, b = CritPathAggregator(top_k=2), CritPathAggregator(top_k=2)
    for agg in (a, b):
        asm = SpanAssembler(sink=agg.add)
        for ev in _merged_walk_stream():
            asm.handle(ev)
    a.merge(b)
    assert a.requests == 4
    assert a.conservation_ok
    assert len(a.slowest()) == 2            # top_k still enforced
    stats = a.summary_dict()["ctl"]
    assert stats["requests"] == 4
    assert sum(stats["blame"].values()) == 4 * 30
    assert set(stats["blame"]) == set(BLAME_BUCKETS)


# ----------------------------------------------------------------------
# real systems
# ----------------------------------------------------------------------
def test_observe_spans_on_mini_system(mini_system):
    asm, agg = mini_system.observe_spans(top_k=3)
    addr = mini_system.image.alloc_u64_array(list(range(8)))
    for i in range(8):
        mini_system.load((i,), walk_fields={"addr": addr + 8 * i})
    mini_system.run()
    # second round: every tag is resident now, so these are pure hits
    for i in range(8):
        mini_system.load((i,), walk_fields={"addr": addr + 8 * i})
    mini_system.run()

    assert asm.requests_completed == 16
    assert asm.requests_open == 0 and asm.walks_open == 0
    assert agg.conservation_ok, agg.mismatches[:5]
    for span in asm.completed:
        assert verify_request(span) == []
        assert sum(blame_request(span).values()) == span.latency


def test_hit_only_requests_reproduce_three_cycle_load_to_use(mini_system):
    """The paper's 3-cycle hit path: blame puts it all on hit_path."""
    asm, agg = mini_system.observe_spans()
    addr = mini_system.image.alloc_u64_array(list(range(4)))
    for i in range(4):
        mini_system.load((i,), walk_fields={"addr": addr + 8 * i})
    mini_system.run()
    for i in range(4):
        mini_system.load((i,), walk_fields={"addr": addr + 8 * i})
    mini_system.run()
    hits = [s for s in asm.completed if s.outcome == "hit"
            and not s.episodes]
    assert len(hits) == 4
    for span in hits:
        # the hit pipeline itself is exactly hit_latency (3) cycles;
        # anything more is front-end queueing, blamed separately
        assert span.done - span.close == 3
        blame = blame_request(span)
        assert blame["hit_path"] == 3
        assert blame["dram"] == blame["exec"] == 0
        assert sum(blame.values()) == span.latency == span.load_to_use


def test_fig14_ci_spans_conservation_invariant():
    """Acceptance: every completed request's blame sums to its latency
    across the whole memoized ci suite."""
    from repro.harness.suite import clear_cache, run_fig14_suite
    from repro.obs.capture import CaptureSpec, capture_scope

    clear_cache()  # a memoized reload would publish no events
    try:
        with capture_scope(CaptureSpec(spans=True)) as cap:
            run_fig14_suite("ci")
            merged = cap.merged_critpath()
    finally:
        clear_cache()  # don't leak captured results into other tests

    assert merged.requests > 100
    assert merged.conservation_ok, merged.mismatches[:5]
    summary = merged.summary_dict()
    assert summary
    for stats in summary.values():
        assert stats["requests"] > 0
        assert stats["latency_p99"] >= stats["latency_p50"] >= 0


# ----------------------------------------------------------------------
# explain: replay + report rendering
# ----------------------------------------------------------------------
def _jsonl_lines(events, run=0):
    return [json.dumps(event_to_dict(ev, {"run": run})) for ev in events]


def test_replay_events_rebuilds_spans_from_jsonl():
    lines = _jsonl_lines(_merged_walk_stream())
    lines.insert(0, json.dumps({"event": "future_thing", "cycle": 0,
                                "component": "c"}))   # skipped, not fatal
    lines.insert(1, "")                               # blank line ok
    agg, assemblers = replay_events(lines)
    assert set(assemblers) == {0}
    assert agg.requests == 2
    assert agg.conservation_ok, agg.mismatches


def test_replay_namespaces_runs_like_perfetto():
    lines = (_jsonl_lines(_merged_walk_stream(), run=0)
             + _jsonl_lines(_merged_walk_stream(), run=1))
    agg, assemblers = replay_events(lines)
    assert set(assemblers) == {0, 1}
    assert agg.requests == 4                # same req_ids, separate runs
    assert set(agg.summary_dict()) == {"ctl", "run1/ctl"}


def test_explain_report_renders_table_and_drilldowns():
    agg, _ = replay_events(_jsonl_lines(_merged_walk_stream()))
    text = explain_report(agg, dropped=3, top=1)
    assert "-- why-slow (repro.obs.critpath) --" in text
    assert "requests=2 conservation=ok" in text
    assert "3 span(s) dropped" in text
    assert "slowest 1 request(s):" in text
    assert "walk 7 join @2 as origin" in text
    assert "dram: 1 reads (0 row hits) spanning @5..@25" in text
    # table-only mode
    assert "slowest" not in explain_report(agg, top=0)


def test_slo_summary_shape():
    agg, _ = replay_events(_jsonl_lines(_merged_walk_stream()))
    payload = slo_summary(agg, "mini")
    assert payload["suite"] == "mini"
    assert payload["components"]["ctl"]["requests"] == 2
    json.dumps(payload)                     # must be JSON-serializable


def test_explain_cli_replay_and_json(tmp_path, capsys):
    from repro.obs.explain import main

    trace = tmp_path / "t.jsonl"
    trace.write_text("\n".join(_jsonl_lines(_merged_walk_stream())) + "\n")
    out_json = tmp_path / "slo.json"
    code = main([str(trace), "--top", "1", "--json", str(out_json),
                 "--suite", "mini"])
    out = capsys.readouterr().out
    assert code == 0
    assert "conservation=ok" in out
    payload = json.loads(out_json.read_text())
    assert payload["suite"] == "mini"
    assert payload["components"]["ctl"]["requests"] == 2


def test_explain_cli_argument_validation(capsys):
    from repro.obs.explain import main

    with pytest.raises(SystemExit):
        main([])                            # neither trace nor --run
    with pytest.raises(SystemExit):
        main(["t.jsonl", "--run", "fig04"])  # both
    capsys.readouterr()
