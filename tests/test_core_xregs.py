"""Unit tests for X-register contexts and occupancy accounting."""

import pytest

from repro.core import XRegisterFile


def test_validation():
    with pytest.raises(ValueError):
        XRegisterFile(0, 8)
    with pytest.raises(ValueError):
        XRegisterFile(4, 0)


def test_allocate_until_exhausted():
    xregs = XRegisterFile(2, 4)
    c1 = xregs.allocate(0)
    c2 = xregs.allocate(0)
    assert c1 is not None and c2 is not None
    assert xregs.allocate(0) is None
    assert xregs.alloc_failures == 1
    assert xregs.live_contexts == 2
    assert xregs.free_contexts == 0


def test_release_recycles():
    xregs = XRegisterFile(1, 4)
    ctx = xregs.allocate(0)
    xregs.release(ctx, 10)
    assert xregs.allocate(11) is not None


def test_release_unknown_raises():
    xregs = XRegisterFile(2, 4)
    ctx = xregs.allocate(0)
    xregs.release(ctx, 1)
    with pytest.raises(KeyError):
        xregs.release(ctx, 2)


def test_register_read_write():
    xregs = XRegisterFile(1, 4)
    ctx = xregs.allocate(0)
    ctx.write(2, 99)
    assert ctx.read(2) == 99
    assert ctx.read(0) == 0


def test_register_bounds():
    ctx = XRegisterFile(1, 4).allocate(0)
    with pytest.raises(IndexError):
        ctx.write(4, 1)
    with pytest.raises(IndexError):
        ctx.read(-1)


def test_values_wrap_to_64_bits():
    ctx = XRegisterFile(1, 2).allocate(0)
    ctx.write(0, 1 << 70)
    assert ctx.read(0) == (1 << 70) & ((1 << 64) - 1)


def test_regs_touched_high_water():
    ctx = XRegisterFile(1, 8).allocate(0)
    ctx.write(0, 1)
    ctx.write(5, 1)
    ctx.write(2, 1)
    assert ctx.regs_touched == 6


def test_resident_occupancy_uses_touched_registers():
    xregs = XRegisterFile(2, 8)
    ctx = xregs.allocate(10)
    ctx.write(1, 5)  # 2 registers touched
    xregs.release(ctx, 30)
    assert xregs.resident_byte_cycles == 2 * 8 * 20


def test_active_occupancy_charged_per_slot():
    xregs = XRegisterFile(1, 8)
    ctx = xregs.allocate(0)
    ctx.write(3, 1)  # 4 regs touched
    xregs.charge_active(ctx, 5)
    assert xregs.occupancy_byte_cycles == 4 * 8 * 5


def test_finalize_closes_live_contexts():
    xregs = XRegisterFile(2, 8)
    ctx = xregs.allocate(0)
    ctx.write(0, 1)
    xregs.finalize(100)
    assert xregs.resident_byte_cycles == 1 * 8 * 100
