"""Tests for X-Cache configuration and Table-3 presets."""

import pytest

from repro.core import TABLE3, XCacheConfig, table3_config


def test_defaults_valid():
    cfg = XCacheConfig()
    assert cfg.entries == cfg.ways * cfg.sets
    assert cfg.data_bytes == cfg.data_sectors * cfg.sector_bytes


def test_validation():
    with pytest.raises(ValueError):
        XCacheConfig(sets=3)
    with pytest.raises(ValueError):
        XCacheConfig(num_active=0)
    with pytest.raises(ValueError):
        XCacheConfig(num_exe=0)
    with pytest.raises(ValueError):
        XCacheConfig(tag_fields=())
    with pytest.raises(ValueError):
        XCacheConfig(data_sectors=0)


def test_table3_complete():
    assert set(TABLE3) == {"widx", "dasx", "sparch", "gamma", "graphpulse"}


@pytest.mark.parametrize("dsa,active,exe,ways,sets,word", [
    ("widx", 16, 2, 8, 1024, 4),
    ("dasx", 16, 4, 8, 1024, 4),
    ("sparch", 32, 4, 8, 512, 4),
    ("gamma", 32, 4, 8, 512, 4),
    ("graphpulse", 16, 4, 1, 131072, 8),
])
def test_table3_presets_match_paper(dsa, active, exe, ways, sets, word):
    cfg = table3_config(dsa)
    assert cfg.num_active == active
    assert cfg.num_exe == exe
    assert cfg.ways == ways
    assert cfg.sets == sets
    assert cfg.wlen == word


def test_table3_tag_fields():
    assert table3_config("widx").tag_fields == ("key",)
    assert table3_config("graphpulse").tag_fields == ("vertex",)
    assert table3_config("sparch").tag_fields == ("row",)


def test_table3_unknown_dsa():
    with pytest.raises(KeyError):
        table3_config("tpu")


def test_scaling_shrinks_geometry():
    full = table3_config("widx")
    scaled = table3_config("widx", scale=0.25)
    assert scaled.sets == full.sets // 4
    assert scaled.data_sectors < full.data_sectors
    assert scaled.ways == full.ways          # associativity preserved
    assert scaled.num_active == full.num_active  # parallelism preserved


def test_scaling_keeps_power_of_two_sets():
    scaled = table3_config("widx", scale=0.3)
    assert scaled.sets & (scaled.sets - 1) == 0


def test_scale_validation():
    with pytest.raises(ValueError):
        XCacheConfig().scaled(0.0)
    with pytest.raises(ValueError):
        XCacheConfig().scaled(2.0)


def test_meta_bytes_accounts_tag_and_state():
    cfg = XCacheConfig(ways=2, sets=2, tag_bytes=8)
    assert cfg.meta_bytes == 4 * (8 + 5)
