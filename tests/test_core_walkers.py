"""End-to-end tests of the three DSA walker programs against the
functional data structures."""

import struct

import pytest

from repro.core import XCacheConfig, XCacheSystem
from repro.data import CSRLayout, HashIndex, SparseMatrix
from repro.dsa.walkers import (
    build_event_walker,
    build_hash_walker,
    build_row_walker,
)


def hash_system(num_buckets=64, hash_cycles=10, **cfg_kw):
    kw = dict(ways=4, sets=16, data_sectors=128, num_active=8,
              xregs_per_walker=16)
    kw.update(cfg_kw)
    config = XCacheConfig(**kw)
    program = build_hash_walker(num_buckets, hash_cycles)
    return XCacheSystem(config, program)


def test_hash_walker_finds_rid():
    system = hash_system()
    index = HashIndex.build(system.image, [(101, 9001), (202, 9002)], 64)
    system.load((101,), walk_fields={"table": index.table_addr})
    responses = system.run()
    assert responses[0].found
    assert int.from_bytes(responses[0].data[:8], "little") == 9001


def test_hash_walker_not_found_in_empty_bucket():
    system = hash_system()
    index = HashIndex.build(system.image, [(1, 10)], 64)
    missing = 999999
    system.load((missing,), walk_fields={"table": index.table_addr})
    responses = system.run()
    assert not responses[0].found


def test_hash_walker_chain_traversal():
    system = hash_system(num_buckets=1)  # all keys collide
    pairs = [(k, 1000 + k) for k in range(1, 10)]
    index = HashIndex.build(system.image, pairs, 1)
    for k, _rid in pairs:
        system.load((k,), walk_fields={"table": index.table_addr})
    responses = system.run()
    got = {r.request.tag[0]: int.from_bytes(r.data[:8], "little")
           for r in responses}
    assert got == {k: rid for k, rid in pairs}


def test_hash_walker_not_found_after_chain():
    system = hash_system(num_buckets=1)
    index = HashIndex.build(system.image, [(1, 10), (2, 20)], 1)
    system.load((3,), walk_fields={"table": index.table_addr})
    responses = system.run()
    assert not responses[0].found


def test_hash_walker_hash_latency_on_critical_path():
    fast = hash_system(hash_cycles=1)
    slow = hash_system(hash_cycles=60)
    for system in (fast, slow):
        index = HashIndex.build(system.image, [(5, 50)], 64)
        system.load((5,), walk_fields={"table": index.table_addr})
        system.run()
    assert (slow.responses[0].completed_at
            > fast.responses[0].completed_at + 50)


def test_hash_walker_validates_bucket_power_of_two():
    with pytest.raises(ValueError):
        build_hash_walker(100, 10)


def row_system(matrix, **cfg_kw):
    kw = dict(ways=4, sets=16, data_sectors=512, num_active=8,
              xregs_per_walker=16, tag_fields=("row",))
    kw.update(cfg_kw)
    config = XCacheConfig(**kw)
    system = XCacheSystem(config, build_row_walker())
    layout = CSRLayout.build(system.image, matrix, packed=True)
    return system, layout


def fetch_row(system, layout, r):
    system.load((r,), walk_fields={"row_ptr": layout.row_ptr_addr,
                                   "pairs": layout.pairs_addr})
    system.run()
    resp = system.responses[-1]
    assert resp.found
    return CSRLayout.parse_pairs(resp.data)


def test_row_walker_fetches_row():
    m = SparseMatrix.from_dense([
        [0.0, 1.5, 0.0, 2.5],
        [3.5, 0.0, 0.0, 0.0],
        [0.0, 0.0, 0.0, 0.0],
        [1.0, 2.0, 3.0, 4.0],
    ])
    system, layout = row_system(m)
    pairs = fetch_row(system, layout, 0)
    assert pairs == [(1, pytest.approx(1.5)), (3, pytest.approx(2.5))]


def test_row_walker_empty_row():
    m = SparseMatrix.from_dense([[1.0], [0.0]])
    system, layout = row_system(m)
    system.load((1,), walk_fields={"row_ptr": layout.row_ptr_addr,
                                   "pairs": layout.pairs_addr})
    responses = system.run()
    assert responses[0].found
    assert responses[0].data == b""


def test_row_walker_long_row_multi_block():
    # one row of 32 elements = 512B of pairs = 8 DRAM blocks
    trips = [(0, c, float(c + 1)) for c in range(32)]
    m = SparseMatrix.from_triplets(1, 32, trips)
    system, layout = row_system(m)
    pairs = fetch_row(system, layout, 0)
    assert len(pairs) == 32
    assert pairs[31] == (31, pytest.approx(32.0))
    assert system.dram.stats.get("reads") >= 8


def test_row_walker_block_straddling_row_ptr():
    # rows 15/16 straddle a 64B row_ptr block boundary (entry 16 @ +64)
    trips = [(r, 0, float(r + 1)) for r in range(20)]
    m = SparseMatrix.from_triplets(20, 4, trips)
    system, layout = row_system(m)
    pairs = fetch_row(system, layout, 15)
    assert pairs == [(0, pytest.approx(16.0))]


def test_row_walker_every_row_matches_reference():
    import random
    rng = random.Random(3)
    trips = [(r, c, rng.uniform(0.5, 2.0))
             for r in range(16) for c in range(16) if rng.random() < 0.3]
    m = SparseMatrix.from_triplets(16, 16, trips)
    system, layout = row_system(m)
    for r in range(16):
        pairs = fetch_row(system, layout, r)
        cols, vals = m.row(r)
        assert [c for c, _v in pairs] == cols
        for (_c, got), want in zip(pairs, vals):
            assert got == pytest.approx(want)


def test_row_walker_second_access_hits():
    m = SparseMatrix.from_dense([[1.0, 2.0]])
    system, layout = row_system(m)
    fetch_row(system, layout, 0)
    dram_before = system.dram.stats.get("reads")
    fetch_row(system, layout, 0)
    assert system.dram.stats.get("reads") == dram_before
    assert system.controller.stats.get("hits") == 1


def event_system(**cfg_kw):
    kw = dict(ways=1, sets=64, data_sectors=128, tag_fields=("vertex",),
              wlen=1, xregs_per_walker=8)
    kw.update(cfg_kw)
    return XCacheSystem(XCacheConfig(**kw), build_event_walker(),
                        store_merge="fadd")


def bits(x):
    return struct.unpack("<Q", struct.pack("<d", x))[0]


def val(resp):
    return struct.unpack("<d", resp.data[:8])[0]


def test_event_walker_insert_without_dram():
    system = event_system()
    system.store((7,), bits(0.25))
    system.run()
    assert system.dram.stats.get("reads") == 0
    system.load((7,), take=True)
    system.run()
    assert val(system.responses[-1]) == pytest.approx(0.25)


def test_event_walker_coalesces_many_stores():
    system = event_system()
    for _ in range(10):
        system.store((3,), bits(0.1))
    system.run()
    system.load((3,), take=True)
    system.run()
    assert val(system.responses[-1]) == pytest.approx(1.0)


def test_event_walker_distinct_vertices_independent():
    system = event_system()
    system.store((1,), bits(1.0))
    system.store((2,), bits(2.0))
    system.run()
    system.load((1,), take=True)
    system.load((2,), take=True)
    system.run()
    values = sorted(val(r) for r in system.responses[-2:])
    assert values == [pytest.approx(1.0), pytest.approx(2.0)]
