"""Unit tests for the MSHR file."""

import pytest

from repro.mem import MSHRFile


def test_allocate_new_entry_needs_fill():
    mshrs = MSHRFile(4)
    assert mshrs.allocate(0x100, lambda: None) is True
    assert len(mshrs) == 1


def test_merge_into_existing_miss():
    mshrs = MSHRFile(4)
    mshrs.allocate(0x100, lambda: None)
    assert mshrs.allocate(0x100, lambda: None) is False
    assert mshrs.merges == 1
    assert len(mshrs) == 1


def test_complete_wakes_waiters_in_order():
    mshrs = MSHRFile(4)
    order = []
    mshrs.allocate(0x40, lambda: order.append(1))
    mshrs.allocate(0x40, lambda: order.append(2))
    for waiter in mshrs.complete(0x40):
        waiter()
    assert order == [1, 2]
    assert len(mshrs) == 0


def test_complete_unknown_block_is_empty():
    assert MSHRFile(2).complete(0x999) == []


def test_full_file_raises_for_new_block():
    mshrs = MSHRFile(2)
    mshrs.allocate(0x40, lambda: None)
    mshrs.allocate(0x80, lambda: None)
    assert mshrs.full
    with pytest.raises(RuntimeError):
        mshrs.allocate(0xC0, lambda: None)
    assert mshrs.stalls == 1


def test_full_file_still_merges_existing():
    mshrs = MSHRFile(2)
    mshrs.allocate(0x40, lambda: None)
    mshrs.allocate(0x80, lambda: None)
    assert mshrs.allocate(0x40, lambda: None) is False


def test_write_flag_sticks():
    mshrs = MSHRFile(2)
    mshrs.allocate(0x40, lambda: None, is_write=False)
    mshrs.allocate(0x40, lambda: None, is_write=True)
    assert mshrs.lookup(0x40).is_write


def test_capacity_validation():
    with pytest.raises(ValueError):
        MSHRFile(0)


def test_lookup_returns_entry():
    mshrs = MSHRFile(2)
    mshrs.allocate(0x40, lambda: None)
    assert mshrs.lookup(0x40).block == 0x40
    assert mshrs.lookup(0x80) is None
