"""Unit tests for routines, the routine table, microcode RAM, and the
label assembler."""

import pytest

from repro.core import (
    EV_FILL,
    EV_META_LOAD,
    IMM,
    MicrocodeError,
    MicrocodeRAM,
    R,
    Routine,
    RoutineTable,
    Transition,
    WalkerSpec,
    compile_walker,
    op,
)
from repro.core.walker import Label, assemble


def test_routine_requires_actions():
    with pytest.raises(MicrocodeError):
        Routine("empty", ())


def test_routine_requires_state_update():
    with pytest.raises(MicrocodeError) as err:
        Routine("bad", (op.addi(R(0), R(0), 1),))
    assert "state update" in str(err.value)


def test_routine_accepts_terminal_state():
    r = Routine("ok", (op.addi(R(0), R(0), 1), op.finish()))
    assert len(r) == 2


def test_routine_accepts_dealloc_terminal():
    Routine("ok", (op.deallocM(),))


def test_branch_bounds_validated():
    with pytest.raises(MicrocodeError):
        Routine("bad", (op.beq(R(0), IMM(0), 5), op.finish()))


def test_branch_to_end_allowed():
    Routine("ok", (op.finish(), op.beq(R(0), IMM(0), 2)))


def test_all_branch_paths_must_update_state():
    # branch skips the only STATE action -> invalid
    with pytest.raises(MicrocodeError):
        Routine("bad", (op.beq(R(0), IMM(0), 2), op.finish()))


def test_branchy_routine_with_full_coverage():
    Routine("ok", (
        op.beq(R(0), IMM(0), 3),
        op.addi(R(1), R(1), 1),
        op.finish(),
        op.deallocM(),
    ))


def test_routine_bytes():
    r = Routine("ok", (op.finish(),))
    assert r.bytes == 4


def test_table_install_and_lookup():
    table = RoutineTable()
    r = Routine("r", (op.finish(),))
    table.install("Default", EV_META_LOAD, r)
    assert table.lookup("Default", EV_META_LOAD) is r
    assert table.lookup("Default", EV_FILL) is None
    assert table.handles("Default", EV_META_LOAD)


def test_table_duplicate_rejected():
    table = RoutineTable()
    r = Routine("r", (op.finish(),))
    table.install("A", "E", r)
    with pytest.raises(MicrocodeError):
        table.install("A", "E", r)


def test_table_require_raises_with_context():
    table = RoutineTable()
    with pytest.raises(MicrocodeError) as err:
        table.require("S", "E")
    assert "S" in str(err.value)


def test_table_num_entries_is_cross_product():
    table = RoutineTable()
    r = Routine("r", (op.finish(),))
    table.install("A", "E1", r)
    table.install("B", "E2", Routine("r2", (op.finish(),)))
    assert table.num_entries == 4  # 2 states x 2 events
    assert len(table) == 2


def test_microcode_ram_offsets():
    r1 = Routine("a", (op.finish(), op.finish()))
    r2 = Routine("b", (op.finish(),))
    ram = MicrocodeRAM([r1, r2])
    assert ram.offset_of("a") == 0
    assert ram.offset_of("b") == 2
    assert ram.total_actions == 3
    assert ram.bytes == 12


def test_microcode_ram_duplicate_names():
    r = Routine("a", (op.finish(),))
    with pytest.raises(MicrocodeError):
        MicrocodeRAM([r, Routine("a", (op.finish(),))])


# ----------------------------------------------------------------------
# assembler
# ----------------------------------------------------------------------

def test_assemble_resolves_labels():
    actions = assemble([
        op.beq(R(0), IMM(0), "skip"),
        op.addi(R(1), R(1), 1),
        op.lbl("skip"),
        op.finish(),
    ])
    assert actions[0].target == 2
    assert len(actions) == 3


def test_assemble_label_at_end():
    actions = assemble([op.jmp("end"), op.finish(), op.lbl("end")])
    assert actions[0].target == 2


def test_assemble_unknown_label():
    with pytest.raises(MicrocodeError):
        assemble([op.jmp("nowhere"), op.finish()])


def test_assemble_duplicate_label():
    with pytest.raises(MicrocodeError):
        assemble([Label("x"), Label("x"), op.finish()])


def test_transition_auto_assembles():
    t = Transition("Default", EV_META_LOAD, (
        op.bnz(R(0), "done"),
        op.addi(R(0), R(0), 1),
        op.lbl("done"),
        op.finish(),
    ))
    assert t.actions[0].target == 2


def test_compile_walker_builds_table_and_ram():
    spec = WalkerSpec("w", (
        Transition("Default", EV_META_LOAD, (op.allocM(), op.state("S"))),
        Transition("S", EV_FILL, (op.finish(),)),
    ))
    compiled = compile_walker(spec)
    assert compiled.table.lookup("Default", EV_META_LOAD) is not None
    assert compiled.ram.total_actions == 3
    assert compiled.name == "w"
    assert spec.states() == ["Default", "S"]
    assert EV_FILL in spec.events()


def test_compile_walker_requires_miss_entry():
    spec = WalkerSpec("w", (
        Transition("Other", EV_FILL, (op.finish(),)),
    ))
    with pytest.raises(MicrocodeError):
        compile_walker(spec)


def test_transition_requires_actions():
    with pytest.raises(MicrocodeError):
        Transition("S", "E", ())
