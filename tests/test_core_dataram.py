"""Unit + property tests for the sectored data RAM."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import DataRAM


def test_geometry_validation():
    with pytest.raises(ValueError):
        DataRAM(0, 8)
    with pytest.raises(ValueError):
        DataRAM(8, 0)


def test_alloc_contiguous():
    ram = DataRAM(16, 8)
    a = ram.alloc(4)
    b = ram.alloc(4)
    assert a == 0 and b == 4
    assert ram.used_sectors == 8
    assert ram.free_sectors == 8


def test_alloc_zero_rejected():
    with pytest.raises(ValueError):
        DataRAM(8, 8).alloc(0)


def test_alloc_failure_returns_none():
    ram = DataRAM(4, 8)
    assert ram.alloc(4) == 0
    assert ram.alloc(1) is None
    assert ram.stats.get("alloc_failures") == 1


def test_free_and_coalesce():
    ram = DataRAM(16, 8)
    a = ram.alloc(4)
    b = ram.alloc(4)
    c = ram.alloc(4)
    ram.free(a, 4)
    ram.free(c, 4)
    # a and c are free but not adjacent; 8-sector alloc must use tail
    assert not ram.can_alloc(9)
    ram.free(b, 4)  # coalesces a+b+c with tail -> 16 free
    assert ram.can_alloc(16)


def test_double_free_detected():
    ram = DataRAM(8, 8)
    a = ram.alloc(4)
    ram.free(a, 4)
    with pytest.raises(ValueError):
        ram.free(a, 4)


def test_overlapping_free_detected():
    ram = DataRAM(8, 8)
    a = ram.alloc(4)
    ram.free(a, 2)
    with pytest.raises(ValueError):
        ram.free(a + 1, 2)


def test_free_out_of_range():
    with pytest.raises(ValueError):
        DataRAM(8, 8).free(7, 4)


def test_free_zero_is_noop():
    ram = DataRAM(8, 8)
    ram.free(0, 0)
    assert ram.free_sectors == 8


def test_write_read_sector():
    ram = DataRAM(8, 8)
    ram.write_sector(2, b"\x01\x02\x03")
    data = ram.read_sectors(2, 3)
    assert data[:3] == b"\x01\x02\x03"
    assert ram.stats.get("bytes_written") == 3
    assert ram.stats.get("bytes_read") == 8


def test_write_overflow_rejected():
    ram = DataRAM(8, 8)
    with pytest.raises(ValueError):
        ram.write_sector(0, b"123456789")
    with pytest.raises(IndexError):
        ram.write_sector(9, b"x")


def test_read_range_validated():
    ram = DataRAM(8, 8)
    with pytest.raises(IndexError):
        ram.read_sectors(4, 10)


def test_read_access_counting_by_width():
    ram = DataRAM(32, 8, access_bytes=32)
    ram.read_sectors(0, 8)  # 64 bytes = 2 x 32B accesses
    assert ram.stats.get("read_accesses") == 2
    ram.read_sectors(0, 1)  # 8 bytes still costs 1 access
    assert ram.stats.get("read_accesses") == 3


def test_can_alloc_checks_contiguity():
    ram = DataRAM(8, 8)
    a = ram.alloc(3)
    b = ram.alloc(3)
    ram.free(a, 3)
    assert ram.can_alloc(3)
    assert not ram.can_alloc(4)
    del b


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=8), min_size=1,
                max_size=20))
def test_alloc_free_conservation_property(sizes):
    ram = DataRAM(64, 8)
    live = []
    for size in sizes:
        start = ram.alloc(size)
        if start is not None:
            live.append((start, size))
        elif live:
            s, n = live.pop(0)
            ram.free(s, n)
    # invariant: used + free == capacity, allocations disjoint
    assert ram.used_sectors + ram.free_sectors == 64
    spans = sorted(live)
    for (s1, n1), (s2, _n2) in zip(spans, spans[1:]):
        assert s1 + n1 <= s2
    for s, n in live:
        ram.free(s, n)
    assert ram.free_sectors == 64
