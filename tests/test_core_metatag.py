"""Unit tests for the meta-tag array."""

import pytest

from repro.core import MetaTagArray
from repro.core.messages import DEFAULT_STATE, VALID_STATE


def make(ways=2, sets=4, fields=("key",)):
    return MetaTagArray(ways, sets, fields)


def test_geometry_validation():
    with pytest.raises(ValueError):
        make(ways=0)
    with pytest.raises(ValueError):
        make(sets=3)


def test_lookup_miss_returns_none():
    tags = make()
    assert tags.lookup((1,)) is None
    assert tags.stats.get("lookups") == 1


def test_allocate_then_lookup():
    tags = make()
    entry = tags.allocate((5,), now=0)
    assert entry is not None
    assert entry.tag == (5,)
    assert entry.state == DEFAULT_STATE
    assert tags.lookup((5,)) is entry


def test_duplicate_allocate_rejected():
    tags = make()
    tags.allocate((5,), now=0)
    with pytest.raises(ValueError):
        tags.allocate((5,), now=1)


def test_tag_arity_checked():
    tags = make(fields=("row", "col"))
    with pytest.raises(ValueError):
        tags.check_tag((1,))
    tags.check_tag((1, 2))


def test_set_mapping_uses_first_field_directly():
    tags = make(ways=1, sets=8)
    assert tags.set_of((3,)) == 3
    assert tags.set_of((11,)) == 3  # wraps by mask


def test_multi_field_tags_spread():
    tags = make(ways=1, sets=64, fields=("row", "col"))
    indices = {tags.set_of((1, c)) for c in range(32)}
    assert len(indices) > 8


def test_lru_eviction_of_inactive():
    tags = make(ways=2, sets=1)
    e1 = tags.allocate((1,), now=0)
    e2 = tags.allocate((2,), now=1)
    tags.touch(e1, 5)
    e3 = tags.allocate((3,), now=6)  # evicts (2,) - LRU
    assert tags.lookup((2,)) is None
    assert tags.lookup((1,)) is e1
    assert tags.lookup((3,)) is e3
    assert tags.stats.get("evictions") == 1


def test_active_entries_never_evicted():
    tags = make(ways=1, sets=1)
    e1 = tags.allocate((1,), now=0)
    tags.mark_active(e1)
    assert tags.allocate((2,), now=1) is None
    assert tags.stats.get("alloc_conflicts") == 1
    assert not tags.can_allocate((2,))


def test_can_allocate_with_free_way():
    tags = make(ways=2, sets=1)
    e1 = tags.allocate((1,), now=0)
    tags.mark_active(e1)
    assert tags.can_allocate((2,))


def test_deallocate_returns_sector_range():
    tags = make()
    entry = tags.allocate((9,), now=0)
    entry.sector_start = 4
    entry.sector_end = 8
    released = tags.deallocate((9,))
    assert (released.sector_start, released.sector_end) == (4, 8)
    assert tags.lookup((9,)) is None


def test_deallocate_missing_raises():
    with pytest.raises(KeyError):
        make().deallocate((1,))


def test_servable_requires_valid_state():
    tags = make()
    entry = tags.allocate((1,), now=0)
    assert not entry.servable
    entry.state = VALID_STATE
    assert entry.servable
    entry.active = True
    assert not entry.servable


def test_occupancy_and_active_count():
    tags = make(ways=4, sets=4)
    e1 = tags.allocate((1,), now=0)
    tags.allocate((2,), now=0)
    tags.mark_active(e1)
    assert tags.occupancy() == 2
    assert tags.active_walkers() == 1
    assert tags.active_walkers() == tags.active_walkers_scan()


def test_active_counter_tracks_scan_through_churn():
    """The O(1) counter stays equal to the reference scan through
    mark/clear (idempotent), conflict evictions, and deallocations."""
    tags = make(ways=2, sets=2)
    entries = {}
    for k in range(4):
        entries[k] = tags.allocate((k,), now=k)
        assert tags.active_walkers() == tags.active_walkers_scan()
    tags.mark_active(entries[0])
    tags.mark_active(entries[0])      # idempotent
    tags.mark_active(entries[1])
    assert tags.active_walkers() == 2 == tags.active_walkers_scan()
    tags.clear_active(entries[0])
    tags.clear_active(entries[0])     # idempotent
    assert tags.active_walkers() == 1 == tags.active_walkers_scan()
    # dealloc of an active entry drops the counter with it
    tags.deallocate(entries[1].tag)
    assert tags.active_walkers() == 0 == tags.active_walkers_scan()
    # conflict eviction of an inactive victim leaves it untouched
    tags.mark_active(entries[2])
    tags.allocate((10,), now=10)      # evicts an inactive way
    assert tags.active_walkers() == 1 == tags.active_walkers_scan()


def test_entries_iteration():
    tags = make(ways=4, sets=4)
    for k in range(3):
        tags.allocate((k,), now=0)
    assert len(tags.entries()) == 3


def test_eviction_reuses_way_for_new_tag():
    tags = make(ways=1, sets=1)
    tags.allocate((1,), now=0)
    e2 = tags.allocate((2,), now=1)
    assert e2.tag == (2,)
    assert e2.state == DEFAULT_STATE
