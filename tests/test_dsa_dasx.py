"""Integration tests for the DASX DSA variants."""

import pytest

from repro.core.config import table3_config
from repro.dsa import DasxAddressModel, DasxBaselineModel, DasxXCacheModel
from repro.workloads import make_widx_workload


@pytest.fixture(scope="module")
def workload():
    return make_widx_workload(num_keys=256, num_probes=512, num_buckets=128,
                              skew=1.2, hash_cycles=20, seed=13,
                              name="dasx")


@pytest.fixture(scope="module")
def config():
    return table3_config("dasx", scale=0.03125)


def test_xcache_rounds_validate(workload, config):
    model = DasxXCacheModel(workload, config=config, round_size=32)
    result = model.run()
    assert result.checks_passed
    assert result.extras["rounds"] == 16
    assert result.dsa == "dasx"


def test_round_partitioning(workload, config):
    model = DasxXCacheModel(workload, config=config, round_size=100)
    assert len(model._rounds) == 6  # ceil(512/100)
    assert sum(len(r) for r in model._rounds) == 512


def test_baseline_flush_per_round_validates(workload):
    result = DasxBaselineModel(workload, round_size=32).run()
    assert result.checks_passed
    assert result.variant == "baseline"


def test_address_variant_uses_round_orchestration(workload, config):
    result = DasxAddressModel(workload, xcache_config=config,
                              round_size=32).run()
    assert result.checks_passed
    assert result.variant == "addr"


def test_preload_makes_compute_hits(workload, config):
    model = DasxXCacheModel(workload, config=config, round_size=32)
    result = model.run()
    # at least the compute phase's accesses (half of all) should hit
    assert result.hits >= len(workload.probes) // 2


def test_cross_round_reuse_beats_flush(config):
    # trace with heavy cross-round repetition
    wl = make_widx_workload(num_keys=64, num_probes=512, num_buckets=64,
                            skew=1.3, hash_cycles=20, seed=17, name="dasx")
    x = DasxXCacheModel(wl, config=config, round_size=32).run()
    base = DasxBaselineModel(wl, round_size=32).run()
    assert x.cycles < base.cycles
