"""Unit + property tests for the chained hash index."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.data import HashIndex, fnv1a64
from repro.mem import MemoryImage


def build(pairs, buckets=16):
    image = MemoryImage()
    return image, HashIndex.build(image, pairs, buckets)


def test_fnv_deterministic():
    assert fnv1a64(42) == fnv1a64(42)
    assert fnv1a64(42) != fnv1a64(43)


def test_fnv_is_64bit():
    assert 0 <= fnv1a64(2**63) < 2**64


def test_insert_and_probe():
    _image, index = build([(10, 100), (20, 200)])
    assert index.probe(10) == 100
    assert index.probe(20) == 200


def test_probe_missing_key():
    _image, index = build([(1, 11)])
    assert index.probe(999) is None


def test_chain_collision_resolution():
    # Force collisions with a single bucket.
    pairs = [(k, k * 10) for k in range(1, 9)]
    _image, index = build(pairs, buckets=1)
    for k, rid in pairs:
        assert index.probe(k) == rid
    assert index.max_chain() == 8


def test_probe_with_walk_lengths():
    pairs = [(k, k) for k in range(1, 5)]
    _image, index = build(pairs, buckets=1)
    # Head of chain is the most recent insert -> walk length 1.
    _rid, walk = index.probe_with_walk(4)
    assert len(walk) == 1
    _rid, walk = index.probe_with_walk(1)
    assert len(walk) == 4


def test_probe_missing_walks_whole_chain():
    pairs = [(k, k) for k in range(1, 4)]
    _image, index = build(pairs, buckets=1)
    rid, walk = index.probe_with_walk(99)
    assert rid is None
    assert len(walk) == 3


def test_nodes_are_block_aligned():
    image, index = build([(7, 70), (8, 80)])
    for key in (7, 8):
        _rid, walk = index.probe_with_walk(key)
        for node in walk:
            assert node % HashIndex.NODE_BYTES == 0


def test_node_layout_in_image():
    image, index = build([(0xABCD, 0x1234)])
    _rid, walk = index.probe_with_walk(0xABCD)
    node = walk[-1]
    assert image.read_u64(node + HashIndex.KEY_OFF) == 0xABCD
    assert image.read_u64(node + HashIndex.RID_OFF) == 0x1234


def test_load_factor_and_counts():
    _image, index = build([(k, k) for k in range(32)], buckets=16)
    assert index.num_entries == 32
    assert index.load_factor() == 2.0


def test_bucket_count_validation():
    image = MemoryImage()
    with pytest.raises(ValueError):
        HashIndex(image, 12)
    with pytest.raises(ValueError):
        HashIndex(image, 0)


def test_bucket_root_entry_addresses():
    image = MemoryImage()
    index = HashIndex(image, 8)
    assert index.bucket_root_entry(3) == index.table_addr + 24


@settings(max_examples=25, deadline=None)
@given(st.dictionaries(st.integers(min_value=1, max_value=2**48),
                       st.integers(min_value=0, max_value=2**32),
                       min_size=1, max_size=64))
def test_probe_returns_inserted_rid_property(mapping):
    _image, index = build(list(mapping.items()), buckets=16)
    for key, rid in mapping.items():
        assert index.probe(key) == rid


@settings(max_examples=15, deadline=None)
@given(st.sets(st.integers(min_value=1, max_value=2**48), min_size=1,
               max_size=40))
def test_walk_never_longer_than_chain_property(keys):
    pairs = [(k, k & 0xFFFF) for k in keys]
    _image, index = build(pairs, buckets=4)
    for k in keys:
        _rid, walk = index.probe_with_walk(k)
        assert 1 <= len(walk) <= index.chain_length(k)
