"""Tests for the experiment harness (reports, registry, static drivers)."""

import pytest

from repro.harness import (
    EXPERIMENTS,
    ExperimentReport,
    PROFILES,
    format_table,
    get_profile,
    run_experiment,
)
from repro.harness.report import Expectation


def test_registry_covers_every_paper_experiment():
    assert set(EXPERIMENTS) == {
        "fig04", "fig07", "fig14", "fig15", "fig16", "fig17", "fig18",
        "fig19", "fig20", "tab01", "tab02", "tab03", "tab04",
    }


def test_unknown_experiment_rejected():
    with pytest.raises(KeyError):
        run_experiment("fig99")


def test_profiles_available():
    assert set(PROFILES) == {"ci", "quick", "full"}
    with pytest.raises(KeyError):
        get_profile("huge")


def test_profile_configs_resolve():
    prof = get_profile("quick")
    for dsa in ("widx", "dasx", "sparch", "gamma"):
        cfg = prof.xcache_config(dsa)
        assert cfg.entries > 0
    wl = prof.widx_workload("TPC-H-22")
    assert len(wl.probes) == prof.widx_probes


def test_format_table_alignment():
    text = format_table(["a", "long-header"], [[1, 2.5], ["xx", "y"]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert len(set(len(l) for l in lines)) == 1  # uniform width


def test_report_render_contains_rows_and_checks():
    report = ExperimentReport("figXX", "demo", ["col"], rows=[["val"]])
    report.expect("claim", "1x", 1.0, True)
    text = report.render()
    assert "figXX" in text and "val" in text and "[PASS]" in text


def test_report_expect_range():
    report = ExperimentReport("x", "t", ["c"])
    report.expect_range("in", "", 5.0, 1.0, 10.0)
    report.expect_range("out", "", 50.0, 1.0, 10.0)
    assert report.expectations[0].ok
    assert not report.expectations[1].ok
    assert not report.all_ok


def test_expectation_render_marks():
    good = Expectation("c", "p", 1.0, True).render()
    bad = Expectation("c", "p", 1.0, False, detail="why").render()
    assert "[PASS]" in good
    assert "[MISS]" in bad and "why" in bad


# -- static drivers run fast enough for unit tests ---------------------

@pytest.mark.parametrize("exp_id", ["tab01", "tab02", "tab03", "tab04",
                                    "fig19", "fig20"])
def test_static_experiments_pass(exp_id):
    report = run_experiment(exp_id, "quick")
    assert report.all_ok, report.render()
    assert report.rows


def test_tab03_matches_paper_values():
    report = run_experiment("tab03", "quick")
    widx_row = next(r for r in report.rows if r[0] == "Widx")
    assert widx_row[1:6] == [16, 2, 8, 1024, 4]


def test_tab01_xcache_column_unshaded():
    report = run_experiment("tab01", "quick")
    for row in report.rows:
        assert not str(row[-1]).endswith("*")


def test_cli_main_runs_static(capsys):
    from repro.harness.__main__ import main
    code = main(["tab04", "--profile", "quick"])
    out = capsys.readouterr().out
    assert code == 0
    assert "tab04" in out
