"""Routine compilation: block partition, fused semantics, verify mode,
ExecResult pooling, and thread-step fusion."""

import pickle
from dataclasses import replace

import pytest

from repro.core import (
    IMM,
    MSG,
    R,
    CompileVerifyError,
    Routine,
    Transition,
    WalkerSpec,
    XCacheConfig,
    XCacheSystem,
    compile_routine,
    compile_walker,
    fuse_walk_steps,
    op,
)
from repro.core.compile import MIN_FUSE_LEN, bind_routine, is_fusible
from repro.core.controller import _OP_CAT_INDEX
from repro.core.isa import FUSIBLE_OPCODES, Opcode
from repro.core.messages import EV_META_LOAD
from repro.core.threadctrl import WalkStep
from repro.core.walker import assemble


# ----------------------------------------------------------------------
# partitioning
# ----------------------------------------------------------------------
def _routine(items, name="t"):
    return Routine(name, assemble(list(items)))


def test_partition_straight_line_fuses_one_block():
    r = _routine([
        op.mov(R(0), MSG("addr")),
        op.addi(R(1), R(0), 4),
        op.xor(R(2), R(1), R(0)),
        op.finish(),                    # STATE done=True: boundary
    ])
    compiled = compile_routine(r)
    assert [(b.start, b.end) for b in compiled.blocks] == [(0, 3)]
    assert compiled.fused_actions == 3


def test_partition_branch_target_becomes_leader():
    r = _routine([
        op.mov(R(0), MSG("addr")),      # 0
        op.bnz(R(0), "tail"),           # 1: boundary (branch)
        op.addi(R(1), R(0), 1),         # 2
        op.addi(R(1), R(1), 1),         # 3
        op.lbl("tail"),
        op.addi(R(2), R(0), 2),         # 4: leader (branch target)
        op.addi(R(2), R(2), 2),         # 5
        op.finish(),                    # 6
    ])
    compiled = compile_routine(r)
    assert [(b.start, b.end) for b in compiled.blocks] == [(2, 4), (4, 6)]
    # the branch boundary itself stays interpreted
    assert compiled.block_starting_at(1) is None
    # a branch target always lands on a block start, never mid-block
    for block in compiled.blocks:
        assert 4 not in range(block.start + 1, block.end)


def test_partition_respects_min_fuse_len():
    r = _routine([
        op.allocM(),                    # 0: boundary
        op.mov(R(0), MSG("addr")),      # 1: lone fusible action
        op.enq_dram(addr=R(0)),         # 2: boundary
        op.state("Wait"),               # 3
    ])
    compiled = compile_routine(r)
    # the lone mov is shorter than MIN_FUSE_LEN; only [3,4) could fuse,
    # and a 1-action tail is equally below the floor
    assert MIN_FUSE_LEN == 2
    assert compiled.blocks == ()


def test_is_fusible_classification():
    assert is_fusible(op.add(R(0), R(1), R(2)))
    assert is_fusible(op.state("Wait"))             # done=False
    assert is_fusible(op.update("sector_start", R(1)))
    assert not is_fusible(op.finish())              # done=True terminates
    assert not is_fusible(op.allocM())
    assert not is_fusible(op.enq_dram(addr=R(0)))
    assert not is_fusible(op.bnz(R(0), 0))
    assert not is_fusible(op.write(R(0), R(1)))
    for action in (op.jmp(0), op.deallocM()):
        assert action.op not in FUSIBLE_OPCODES or not is_fusible(action)


# ----------------------------------------------------------------------
# binding
# ----------------------------------------------------------------------
def _alu_chain(n, then_finish=True):
    body = [op.mov(R(0), MSG("addr"))]
    for i in range(n):
        body.append(op.addi(R(1), R(0), i))
    if then_finish:
        body.append(op.finish())
    return _routine(body)


def test_bind_drops_blocks_wider_than_num_exe(mini_system):
    r = _alu_chain(8)                  # 9-action block
    compiled = compile_routine(r)
    assert compiled.blocks[0].n == 9
    stats = mini_system.controller.stats
    narrow = bind_routine(compiled, stats, _OP_CAT_INDEX,
                          xregs_limit=8, num_exe=4)
    assert all(b is None for b in narrow)
    wide = bind_routine(compiled, stats, _OP_CAT_INDEX,
                        xregs_limit=8, num_exe=16)
    assert wide[0] is not None and wide[0].n == 9


def test_bind_drops_blocks_past_register_file(mini_system):
    r = _routine([
        op.mov(R(0), MSG("addr")),
        op.addi(R(7), R(0), 1),
        op.finish(),
    ])
    compiled = compile_routine(r)
    stats = mini_system.controller.stats
    bound = bind_routine(compiled, stats, _OP_CAT_INDEX,
                         xregs_limit=4, num_exe=8)
    # R7 >= limit: the interpreter owns the IndexError message
    assert all(b is None for b in bound)


# ----------------------------------------------------------------------
# fused semantics vs the interpreter
# ----------------------------------------------------------------------
def _run_mini(mini_walker, mini_config, mode):
    from repro.core.messages import reset_ids
    from repro.sim import Tracer

    reset_ids()
    # mini_config's num_exe=2 is below every block's length; widen the
    # back-end so the Wait@Fill update/addi/update block actually binds
    system = XCacheSystem(replace(mini_config, compile_mode=mode, num_exe=4),
                          mini_walker)
    tracer = Tracer(capacity=100_000)
    system.controller.tracer = tracer
    addr = system.image.alloc_u64_array(list(range(16)))
    for i in range(16):
        system.load((i,), walk_fields={"addr": addr + 8 * i})
    responses = system.run()
    return system, tracer, responses


@pytest.mark.parametrize("mode", ["on", "verify"])
def test_mini_system_digest_matches_interpreter(mini_walker, mini_config,
                                                mode):
    off_sys, off_trace, off_resp = _run_mini(mini_walker, mini_config, "off")
    sys_, trace, resp = _run_mini(mini_walker, mini_config, mode)
    assert off_trace.total_emitted > 0
    assert trace.digest() == off_trace.digest()
    assert [(r.status, r.data) for r in resp] == \
           [(r.status, r.data) for r in off_resp]
    # the occupancy integral must be byte-identical (fused blocks charge
    # the same high-water-mark units the per-action path did)
    assert sys_.controller.xregs.occupancy_byte_cycles == \
        off_sys.controller.xregs.occupancy_byte_cycles
    # so must every stat counter the energy model reads
    assert {k: c.value for k, c in sys_.controller.stats.counters.items()} \
        == {k: c.value for k, c in off_sys.controller.stats.counters.items()}


def test_mini_system_actually_fused(mini_walker, mini_config):
    system, _, _ = _run_mini(mini_walker, mini_config, "on")
    bound = system.controller._bound_routines
    assert bound, "no routines were bound in compile_mode=on"
    assert any(b is not None for blocks in bound.values() for b in blocks)


def _burst_walker():
    """Walker whose Wait@Fill routine *starts* with a fusible block, so
    the fused path runs with a full budget after every fill."""
    from repro.core.messages import EV_FILL

    spec = WalkerSpec(
        name="burst",
        transitions=(
            Transition("Default", EV_META_LOAD, (
                op.allocM(),
                op.mov(R(0), MSG("addr")),
                op.enq_dram(addr=R(0)),
                op.state("Wait"),
            )),
            Transition("Wait", EV_FILL, (
                op.addi(R(1), R(0), 1),
                op.xor(R(2), R(1), R(0)),
                op.and_(R(3), R(2), IMM(0xFF)),
                op.finish(),
            )),
        ),
    )
    return compile_walker(spec)


def _burst_system(mini_config, mode):
    # trace_threshold=0: these tests patch/inspect the *block* tier's
    # bound closures, which an episode trace would inline right past
    system = XCacheSystem(replace(mini_config, compile_mode=mode, num_exe=4,
                                  trace_threshold=0),
                          _burst_walker())
    addr = system.image.alloc_u64_array(list(range(8)))
    return system, addr


def _bound_blocks(system):
    bound = system.controller._bound_routines
    return [b for seq in bound.values() for b in seq if b is not None]


def test_fused_blocks_execute_on_hot_path(mini_config):
    system, addr = _burst_system(mini_config, "on")
    system.load((0,), walk_fields={"addr": addr})
    system.run()                       # binds the Wait@Fill block
    blocks = _bound_blocks(system)
    assert blocks
    calls = [0]
    for block in blocks:
        orig = block.fused

        def counting(walker, msg, dataram, _orig=orig):
            calls[0] += 1
            return _orig(walker, msg, dataram)

        block.fused = counting
    for i in range(1, 4):
        system.load((i,), walk_fields={"addr": addr + 8 * i})
    system.run()
    assert calls[0] >= 3, "fused closures never ran on the hot path"


def test_verify_mode_detects_divergence(mini_config):
    system, addr = _burst_system(mini_config, "verify")
    system.load((0,), walk_fields={"addr": addr})
    system.run()                       # binds (and verifies) cleanly
    blocks = _bound_blocks(system)
    assert blocks
    victim = blocks[0]
    orig = victim.fused

    def corrupted(walker, msg, dataram):
        occ = orig(walker, msg, dataram)
        walker.ctx.regs[0] ^= 0xDEAD   # silently diverge from the ISA
        return occ

    victim.fused = corrupted
    with pytest.raises(CompileVerifyError):
        system.load((1,), walk_fields={"addr": addr + 8})
        system.run()
    victim.fused = orig


# ----------------------------------------------------------------------
# ExecResult pooling (allocation regression)
# ----------------------------------------------------------------------
def test_exec_results_are_pooled(mini_walker, mini_config, monkeypatch):
    import repro.core.actions as actions_mod

    allocations = [0]
    orig_init = actions_mod.ExecResult.__init__

    def counting_init(self, *args, **kwargs):
        allocations[0] += 1
        orig_init(self, *args, **kwargs)

    monkeypatch.setattr(actions_mod.ExecResult, "__init__", counting_init)
    system = XCacheSystem(replace(mini_config, compile_mode="off"),
                          mini_walker)
    addr = system.image.alloc_u64_array(list(range(16)))
    for i in range(16):
        system.load((i,), walk_fields={"addr": addr + 8 * i})
    system.run()
    executed = system.controller.stats.counter("actions_total").value
    assert executed > 100
    # steady state returns module-level pooled instances; only a
    # pathological >32-slot copy may allocate
    assert allocations[0] == 0, (allocations[0], executed)


# ----------------------------------------------------------------------
# microcode RAM pickling (suite disk cache)
# ----------------------------------------------------------------------
def test_microcode_ram_pickles_and_recompiles(mini_walker):
    ram = mini_walker.ram
    name = ram.routines[0].name
    assert ram.compiled_routine(name).n_actions == len(ram.routines[0])
    clone = pickle.loads(pickle.dumps(ram))
    # closures were dropped for the wire; they rebuild on demand
    assert clone._compiled == {}
    rebuilt = clone.compiled_routine(name)
    assert [(b.start, b.end) for b in rebuilt.blocks] == \
           [(b.start, b.end) for b in ram.compiled_routine(name).blocks]


# ----------------------------------------------------------------------
# thread-step fusion (threadctrl analogue)
# ----------------------------------------------------------------------
def test_fuse_walk_steps_merges_adjacent_compute():
    steps = (WalkStep("compute", cycles=3), WalkStep("compute", cycles=2),
             WalkStep("dram", addr=64), WalkStep("compute", cycles=1))
    fused = fuse_walk_steps(steps, verify=True)
    assert fused == (WalkStep("compute", cycles=5),
                     WalkStep("dram", addr=64),
                     WalkStep("compute", cycles=1))


def test_fuse_walk_steps_keeps_zero_cycle_steps():
    # a zero-cycle step costs max(1, 0) = 1 wall cycle; merging it would
    # erase that cycle, so it must stay un-fused
    steps = (WalkStep("compute", cycles=2), WalkStep("compute", cycles=0),
             WalkStep("compute", cycles=2))
    fused = fuse_walk_steps(steps, verify=True)
    assert fused == steps


def test_thread_controller_timing_unchanged_by_fusion():
    from repro.mem.dram import DRAMConfig, DRAMModel
    from repro.mem.layout import MemoryImage
    from repro.core.threadctrl import ThreadController
    from repro.sim import new_simulator

    def run(mode):
        sim = new_simulator()
        dram = DRAMModel(sim, MemoryImage(), DRAMConfig())
        ctrl = ThreadController(sim, dram, num_pipelines=2,
                                compile_mode=mode)
        for i in range(8):
            ctrl.submit((
                WalkStep("compute", cycles=2),
                WalkStep("compute", cycles=3),
                WalkStep("dram", addr=64 * i),
                WalkStep("compute", cycles=0),
                WalkStep("compute", cycles=1),
            ))
        sim.run()
        ctrl.finalize()
        return ctrl

    off = run("off")
    on = run("on")
    verify = run("verify")
    for fused in (on, verify):
        assert fused.walks_completed == off.walks_completed == 8
        assert fused.last_completion == off.last_completion
        assert fused.occupancy_byte_cycles == off.occupancy_byte_cycles
        # 2+3 merge each walk; the 0-cycle step blocks the second merge
        assert fused.stats.get("steps_fused") == 8
    assert off.stats.get("steps_fused") == 0
