"""Content-addressed result store: canonical digests, persistence,
invalidation, and the stats contract the dedup tests rely on."""

import pytest

from repro.svc.store import (
    STORE_FORMAT,
    ResultStore,
    canonical_json,
    code_version,
    digest_of,
)


def test_canonical_json_is_order_insensitive():
    a = canonical_json({"b": 1, "a": [1, 2]})
    b = canonical_json({"a": [1, 2], "b": 1})
    assert a == b
    assert " " not in a  # compact separators


def test_canonical_json_normalizes_tuples():
    assert canonical_json({"x": (1, 2)}) == canonical_json({"x": [1, 2]})


def test_canonical_json_rejects_unserializable():
    with pytest.raises(TypeError):
        canonical_json({"x": object()})
    with pytest.raises(ValueError):
        canonical_json({"x": float("nan")})


def test_digest_is_stable_and_distinct():
    assert digest_of({"a": 1}) == digest_of({"a": 1})
    assert digest_of({"a": 1}) != digest_of({"a": 2})
    assert len(digest_of({"a": 1})) == 64  # full sha256 hex


def test_code_version_is_cached_and_short():
    assert code_version() == code_version()
    assert len(code_version()) == 16


def test_memory_store_round_trip():
    store = ResultStore()
    digest = digest_of({"job": 1})
    assert store.get(digest) is None
    store.put(digest, {"rendered": "x", "all_ok": True})
    assert store.get(digest)["rendered"] == "x"
    assert store.stats.as_dict() == {
        "hits": 1, "misses": 1, "stores": 1, "invalidated": 0,
        "coalesced": 0}


def test_put_is_idempotent():
    store = ResultStore()
    digest = digest_of({"job": 1})
    store.put(digest, {"v": 1})
    store.put(digest, {"v": 2})  # second put ignored, not an error
    assert store.get(digest) == {"v": 1}
    assert store.stats.stores == 1


def test_disk_store_survives_process_boundary(tmp_path):
    digest = digest_of({"job": "persisted"})
    first = ResultStore(tmp_path)
    first.put(digest, {"rendered": "report", "all_ok": True})

    # a second store over the same directory models a fresh process
    second = ResultStore(tmp_path)
    assert second.get(digest)["rendered"] == "report"
    assert second.stats.hits == 1


def test_disk_entry_format_mismatch_invalidates(tmp_path):
    digest = digest_of({"job": "stale"})
    store = ResultStore(tmp_path)
    store.put(digest, {"v": 1})
    (path,) = tmp_path.glob("*.json")

    # rewrite with a bumped format marker: must read as a miss
    with path.open("r") as fh:
        import json

        wrapped = json.load(fh)
    wrapped["format"] = STORE_FORMAT + 1
    with path.open("w") as fh:
        json.dump(wrapped, fh)

    fresh = ResultStore(tmp_path)
    assert fresh.get(digest) is None
    assert fresh.stats.invalidated == 1


def test_disk_corruption_is_a_miss(tmp_path):
    digest = digest_of({"job": "torn"})
    store = ResultStore(tmp_path)
    store.put(digest, {"v": 1})
    (path,) = tmp_path.glob("*.json")
    path.write_text("definitely not json")
    fresh = ResultStore(tmp_path)
    assert fresh.get(digest) is None


def test_suite_disk_key_uses_canonical_digest(tmp_path, monkeypatch):
    """The fig-14 suite cache (satellite of this PR) keys by canonical
    JSON + code version, not ``repr()`` of a tuple."""
    from repro.harness import suite

    monkeypatch.setenv(suite.SUITE_CACHE_ENV, str(tmp_path))
    key = ("ci", ("dasx",))
    path = suite._disk_cache_path(key)
    expected = digest_of({
        "kind": "fig14-suite",
        "profile": "ci",
        "workloads": ["dasx"],
        "code": code_version(),
        "format": suite.SUITE_CACHE_FORMAT,
    })[:16]
    assert path.name == f"suite_ci_{expected}.pkl"
