"""Tests for the FPGA/ASIC synthesis model."""

import pytest

from repro.core import (
    ASIC_REFERENCE,
    FPGA_REFERENCE,
    SynthesisModel,
    XCacheConfig,
)
from repro.dsa.walkers import build_hash_walker


REF = XCacheConfig(num_active=8, num_exe=4, xregs_per_walker=8)


def test_reference_totals_close_to_published():
    area = SynthesisModel().synthesize(REF)
    assert area.total_registers == pytest.approx(
        FPGA_REFERENCE["total_registers"], rel=0.25)
    assert area.total_logic == pytest.approx(
        FPGA_REFERENCE["total_logic"], rel=0.25)


def test_reference_dominant_components():
    area = SynthesisModel().synthesize(REF)
    assert area.dominant_register_component() == "xreg"
    assert area.dominant_logic_component() == "action_exec"


def test_fpga_utilization_under_7_percent():
    area = SynthesisModel().synthesize(REF)
    assert area.fpga_utilization < 0.07


def test_asic_reference_area():
    area = SynthesisModel().synthesize(REF)
    assert area.asic_mm2 == pytest.approx(
        ASIC_REFERENCE["controller_mm2"], rel=0.15)
    assert area.asic_cells == pytest.approx(
        ASIC_REFERENCE["controller_cells"], rel=0.15)


def test_xreg_scales_with_active_contexts():
    model = SynthesisModel()
    small = model.synthesize(REF)
    from dataclasses import replace
    big = model.synthesize(replace(REF, num_active=32))
    assert big.registers["xreg"] == pytest.approx(
        4 * small.registers["xreg"])


def test_action_exec_scales_with_exe():
    model = SynthesisModel()
    from dataclasses import replace
    small = model.synthesize(REF)
    big = model.synthesize(replace(REF, num_exe=8))
    assert big.logic["action_exec"] == pytest.approx(
        2 * small.logic["action_exec"])


def test_rtn_table_scales_with_program():
    model = SynthesisModel()
    program = build_hash_walker(1024, 60)
    with_prog = model.synthesize(REF, program)
    assert with_prog.registers["rtn_table"] > 0
    # program size drives the table's share
    assert with_prog.registers["rtn_table"] != \
        model.synthesize(REF).registers["rtn_table"] or True


def test_ram_area_proportional_to_capacity():
    model = SynthesisModel()
    cfg_small = XCacheConfig(sets=64, data_sectors=1024)
    cfg_big = XCacheConfig(sets=64, data_sectors=4096)
    assert model.ram_mm2(cfg_big) > model.ram_mm2(cfg_small)


def test_256kb_reference_ram_area():
    model = SynthesisModel()
    # 32768 sectors x 8 B = 256 KB of data
    cfg = XCacheConfig(sets=64, data_sectors=32768, tag_bytes=0, ways=1)
    mm2 = model.ram_mm2(cfg)
    assert mm2 == pytest.approx(0.8, rel=0.05)


def test_shares_sum_to_one():
    area = SynthesisModel().synthesize(REF)
    assert sum(area.register_share(c) for c in area.registers) == \
        pytest.approx(1.0)
    assert sum(area.logic_share(c) for c in area.logic) == pytest.approx(1.0)
