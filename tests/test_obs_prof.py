"""Tests for the cycle-attribution profiler (`repro.obs.prof`)."""

import io

import pytest

from repro.harness.report import cycles_breakdown_table
from repro.obs import (
    ACTION_CATEGORIES,
    EventBus,
    Miss,
    ProfileProcessor,
    WalkerDispatch,
    WalkerRetire,
    WalkerWake,
    WalkerYield,
    apportion,
    write_folded,
)


# ----------------------------------------------------------------------
# apportionment
# ----------------------------------------------------------------------
def test_apportion_sums_exactly():
    for duration in (1, 3, 7, 100, 9999):
        for costs in ((2, 1, 1, 0, 0), (1, 1, 1, 1, 1), (0, 0, 5, 0, 3)):
            shares = apportion(duration, costs)
            assert sum(shares) == duration
            assert all(s >= 0 for s in shares)
            # zero-cost categories never receive cycles
            assert all(s == 0 for s, c in zip(shares, costs) if c == 0)


def test_apportion_proportionality():
    shares = apportion(100, (3, 1, 0, 0, 0))
    assert shares == [75, 25, 0, 0, 0]


def test_apportion_largest_remainder_is_deterministic():
    # 3 cycles over equal costs: the leftover lands on the earliest
    # categories, same answer every call
    assert apportion(3, (1, 1, 1, 1, 1)) == apportion(3, (1, 1, 1, 1, 1))
    assert sum(apportion(3, (1, 1, 1, 1, 1))) == 3


def test_apportion_degenerate_inputs():
    assert apportion(5, ()) == []
    assert apportion(5, (0, 0, 0, 0, 0)) == []
    assert apportion(0, (1, 2, 3)) == []


# ----------------------------------------------------------------------
# synthetic event streams
# ----------------------------------------------------------------------
def _profiled_bus():
    bus = EventBus()
    return bus, bus.attach(ProfileProcessor())


def test_conservation_on_synthetic_walk():
    bus, prof = _profiled_bus()
    bus.publish(Miss(cycle=10, component="ctl", tag=(1,), op="MetaLoad"))
    bus.publish(WalkerDispatch(cycle=10, component="ctl", tag=(1,),
                               routine="Default@MetaLoad"))
    bus.publish(WalkerYield(cycle=13, component="ctl", tag=(1,),
                            routine="Default@MetaLoad",
                            action_costs=(2, 1, 1, 0, 0), fills=1))
    bus.publish(WalkerWake(cycle=50, component="ctl", tag=(1,),
                           reason="Fill"))
    bus.publish(WalkerDispatch(cycle=50, component="ctl", tag=(1,),
                               routine="Wait@Fill"))
    bus.publish(WalkerRetire(cycle=56, component="ctl", tag=(1,),
                             found=True, lifetime=46,
                             action_costs=(1, 0, 1, 0, 2)))
    assert prof.conservation_ok
    assert prof.contexts_retired == 1
    assert prof.cycles_attributed == 46
    assert prof.contexts_open == 0
    # the 37-cycle sleep left a fill outstanding -> dram_wait
    assert prof.stacks[("ctl", "Default@MetaLoad", "dram_wait")] == 37
    # exec cycles went only to categories with nonzero cost
    assert ("ctl", "Wait@Fill", "control") not in prof.stacks
    assert sum(prof.stacks.values()) == 46


def test_mismatched_lifetime_is_flagged():
    bus, prof = _profiled_bus()
    bus.publish(Miss(cycle=0, component="ctl", tag=(1,), op="L"))
    bus.publish(WalkerDispatch(cycle=0, component="ctl", tag=(1,),
                               routine="R"))
    # lifetime claims 99 but the stream only covers 10 cycles
    bus.publish(WalkerRetire(cycle=10, component="ctl", tag=(1,),
                             found=True, lifetime=99))
    assert not prof.conservation_ok
    assert prof.mismatches == [("ctl", (1,), 10, 99)]


def test_costless_exec_books_as_busy():
    bus, prof = _profiled_bus()
    bus.publish(WalkerDispatch(cycle=0, component="t", tag=(1,),
                               routine="thread-walk"))
    bus.publish(WalkerYield(cycle=4, component="t", tag=(1,),
                            routine="thread-walk", fills=1))
    bus.publish(WalkerWake(cycle=30, component="t", tag=(1,),
                           reason="fill"))
    bus.publish(WalkerRetire(cycle=33, component="t", tag=(1,),
                             found=True, lifetime=33))
    assert prof.conservation_ok
    # compute before the fetch, and again after the wake (no dispatch)
    assert prof.stacks[("t", "thread-walk", "busy")] == 7
    assert prof.stacks[("t", "thread-walk", "dram_wait")] == 26


def test_event_wait_vs_dram_wait_classification():
    bus, prof = _profiled_bus()
    bus.publish(Miss(cycle=0, component="ctl", tag=(1,), op="L"))
    bus.publish(WalkerDispatch(cycle=0, component="ctl", tag=(1,),
                               routine="A"))
    bus.publish(WalkerYield(cycle=0, component="ctl", tag=(1,),
                            routine="A", fills=0))
    bus.publish(WalkerWake(cycle=8, component="ctl", tag=(1,),
                           reason="MetaStore"))
    bus.publish(WalkerDispatch(cycle=8, component="ctl", tag=(1,),
                               routine="B"))
    bus.publish(WalkerRetire(cycle=9, component="ctl", tag=(1,),
                             found=True, lifetime=9))
    assert prof.conservation_ok
    assert prof.stacks[("ctl", "A", "event_wait")] == 8


def test_orphan_events_are_ignored():
    bus, prof = _profiled_bus()
    bus.publish(WalkerYield(cycle=5, component="ctl", tag=(9,),
                            routine="R", fills=1))
    bus.publish(WalkerWake(cycle=9, component="ctl", tag=(9,), reason="F"))
    bus.publish(WalkerRetire(cycle=9, component="ctl", tag=(9,),
                             found=False, lifetime=4))
    assert prof.contexts_retired == 0
    assert prof.stacks == {}
    assert prof.conservation_ok


def test_merge_accumulates_and_preserves_mismatches():
    _, a = _profiled_bus()
    bus, b = _profiled_bus()
    bus.publish(Miss(cycle=0, component="ctl", tag=(1,), op="L"))
    bus.publish(WalkerDispatch(cycle=0, component="ctl", tag=(1,),
                               routine="R"))
    bus.publish(WalkerRetire(cycle=5, component="ctl", tag=(1,),
                             found=True, lifetime=5))
    a.merge(b)
    assert a.contexts_retired == 1
    assert a.stacks[("ctl", "R", "busy")] == 5
    assert a.conservation_ok


def test_folded_lines_format():
    bus, prof = _profiled_bus()
    bus.publish(Miss(cycle=0, component="ctl", tag=(1,), op="L"))
    bus.publish(WalkerDispatch(cycle=0, component="ctl", tag=(1,),
                               routine="R"))
    bus.publish(WalkerRetire(cycle=5, component="ctl", tag=(1,),
                             found=True, lifetime=5))
    out = io.StringIO()
    assert write_folded(out, prof) == 1
    assert out.getvalue() == "ctl;R;busy 5\n"


def test_write_folded_to_path(tmp_path):
    bus, prof = _profiled_bus()
    bus.publish(Miss(cycle=0, component="ctl", tag=(1,), op="L"))
    bus.publish(WalkerDispatch(cycle=0, component="ctl", tag=(1,),
                               routine="R"))
    bus.publish(WalkerRetire(cycle=3, component="ctl", tag=(1,),
                             found=True, lifetime=3))
    path = tmp_path / "cycles.folded"
    write_folded(str(path), prof)
    assert path.read_text() == "ctl;R;busy 3\n"


def test_breakdown_table_renders_percentages():
    table = cycles_breakdown_table(
        {"widx": {"agen": 25, "dram_wait": 75}})
    assert "widx" in table and "100" in table
    assert "25.0%" in table and "75.0%" in table
    for cat in ACTION_CATEGORIES:
        assert cat in table
    assert cycles_breakdown_table({}) == ""


# ----------------------------------------------------------------------
# real systems
# ----------------------------------------------------------------------
def test_conservation_on_mini_system(mini_system):
    prof = mini_system.observe(ProfileProcessor())
    addr = mini_system.image.alloc_u64_array(list(range(8)))
    for i in range(8):
        mini_system.load((i,), walk_fields={"addr": addr + 8 * i})
    mini_system.run()
    assert prof.contexts_retired == 8
    assert prof.conservation_ok, prof.mismatches
    assert prof.contexts_open == 0
    # a real walk spends time in DRAM and in routine execution
    kinds = {kind for (_, _, kind) in prof.stacks}
    assert "dram_wait" in kinds


def test_fig14_ci_conservation_invariant(tmp_path):
    """Acceptance: attributed cycles == lifetime on the whole ci suite."""
    from repro.harness.suite import clear_cache, run_fig14_suite
    from repro.obs.capture import CaptureSpec, capture_scope

    clear_cache()  # a memoized reload would publish no events
    folded = tmp_path / "cycles.folded"
    try:
        with capture_scope(CaptureSpec(prof_path=str(folded))) as cap:
            run_fig14_suite("ci")
            profiles = cap.profiles
    finally:
        clear_cache()  # don't leak profiled results into other tests

    assert profiles
    assert sum(p.contexts_retired for p in profiles) > 100
    for prof in profiles:
        assert prof.conservation_ok, prof.mismatches[:5]
        assert prof.contexts_open == 0

    # capture_scope exit wrote the merged folded stacks
    lines = folded.read_text().splitlines()
    assert lines
    for line in lines:
        stack, count = line.rsplit(" ", 1)
        assert len(stack.split(";")) == 3
        assert int(count) > 0
