"""Unit + property tests for the B-tree substrate."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.data import BTree
from repro.mem import MemoryImage


def build(items):
    image = MemoryImage()
    return image, BTree(image, items)


def test_empty_tree():
    _image, tree = build([])
    assert tree.probe(5) is None
    assert tree.height == 1
    assert len(tree) == 0


def test_single_item():
    _image, tree = build([(10, 100)])
    assert tree.probe(10) == 100
    assert tree.probe(11) is None


def test_all_items_found():
    items = {k * 7: k for k in range(1, 100)}
    _image, tree = build(items.items())
    for key, value in items.items():
        assert tree.probe(key) == value


def test_absent_keys_not_found():
    _image, tree = build([(k, k) for k in range(0, 100, 2)])
    for key in range(1, 100, 2):
        assert tree.probe(key) is None


def test_height_grows_logarithmically():
    _image, small = build([(k, k) for k in range(3)])
    image2, big = BTree.__new__(BTree), None
    _image2, big = build([(k, k) for k in range(200)])
    assert small.height == 1
    assert 3 <= big.height <= 6
    assert big.num_nodes > 60


def test_nodes_are_block_aligned():
    _image, tree = build([(k, k) for k in range(50)])
    _value, path = tree.probe_with_path(25)
    for node in path:
        assert node % BTree.NODE_BYTES == 0


def test_path_length_equals_height():
    _image, tree = build([(k, k) for k in range(64)])
    _value, path = tree.probe_with_path(30)
    assert len(path) == tree.height


def test_key_range_validation():
    with pytest.raises(ValueError):
        build([((1 << 64) - 1, 0)])


def test_duplicate_keys_last_wins():
    _image, tree = build([(5, 1), (5, 2)])
    assert tree.probe(5) == 2


def test_keys_sorted():
    _image, tree = build([(9, 0), (1, 0), (5, 0)])
    assert tree.keys() == [1, 5, 9]


@settings(max_examples=25, deadline=None)
@given(st.dictionaries(st.integers(min_value=0, max_value=2**50),
                       st.integers(min_value=0, max_value=2**40),
                       min_size=1, max_size=120))
def test_probe_roundtrip_property(items):
    _image, tree = build(items.items())
    for key, value in items.items():
        assert tree.probe(key) == value
    # a key guaranteed absent
    missing = max(items) + 1
    assert tree.probe(missing) is None


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=1, max_value=300),
       st.integers(min_value=0, max_value=99))
def test_walker_agrees_with_probe_property(n, seed):
    from repro.core import XCacheConfig, XCacheSystem
    from repro.dsa.walkers import build_btree_walker
    rng = random.Random(seed)
    items = {rng.randrange(1, 1 << 40): rng.randrange(1 << 32)
             for _ in range(n)}
    config = XCacheConfig(ways=4, sets=16, data_sectors=128, num_active=8,
                          xregs_per_walker=16)
    system = XCacheSystem(config, build_btree_walker())
    tree = BTree(system.image, items.items())
    probes = rng.sample(sorted(items), min(20, len(items))) + [1 << 41]
    for key in probes:
        system.load((key,), walk_fields={"root": tree.root_addr})
    for resp in system.run():
        key = resp.request.tag[0]
        want = items.get(key)
        got = (int.from_bytes(resp.data[:8], "little")
               if resp.found else None)
        assert got == want
