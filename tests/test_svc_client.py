"""Remote client/server: the multiprocessing.connection wire, error
mapping, and the watch stream."""

import pytest

from repro.svc.client import ServiceClient, ServiceServer, parse_address
from repro.svc.jobs import AdmissionBusy, JobCancelled, JobSpec
from repro.svc.service import Service


@pytest.fixture()
def remote():
    """A served 1-worker service on an ephemeral loopback port."""
    service = Service(workers=1, health=False).start()
    server = ServiceServer(service, port=0).start()
    client = ServiceClient(server.address)
    try:
        yield client, service
    finally:
        server.stop()
        service.close()


def test_parse_address_defaults_to_loopback():
    assert parse_address("7791") == ("127.0.0.1", 7791)
    assert parse_address("10.0.0.5:7791") == ("10.0.0.5", 7791)


def test_remote_submit_status_result_round_trip(remote):
    client, _service = remote
    status = client.submit(JobSpec(experiment="sleep:0.2"))
    assert status["state"] in ("pending", "running")
    payload = client.result(status["job"], timeout=30)
    assert payload["rendered"] == "== sleep: 0.2s =="
    final = client.status(status["job"])
    assert final["state"] == "done"
    assert final["result_digest"]


def test_remote_dedup_shares_the_job(remote):
    client, service = remote
    spec = JobSpec(experiment="sleep:0.4")
    first = client.submit(spec)
    second = client.submit(spec)
    assert second["job"] == first["job"]  # coalesced onto one job
    client.result(first["job"], timeout=30)
    assert service.store.stats.misses == 1


def test_remote_errors_map_to_local_exceptions(remote):
    client, _service = remote
    with pytest.raises(ValueError, match="unknown experiment"):
        client.submit(JobSpec(experiment="fig99"))
    with pytest.raises(RuntimeError, match="unknown-job"):
        client.status(12345678)

    status = client.submit(JobSpec(experiment="sleep:5"))
    with pytest.raises(TimeoutError):
        client.result(status["job"], timeout=0.05)
    assert client.cancel(status["job"])
    with pytest.raises(JobCancelled):
        client.result(status["job"], timeout=10)


def test_remote_backpressure_carries_retry_after():
    service = Service(workers=1, max_pending=1, health=False).start()
    server = ServiceServer(service, port=0).start()
    client = ServiceClient(server.address)
    try:
        import time

        from repro.svc.jobs import JobState

        running = service.submit(JobSpec(experiment="sleep:2"))
        deadline = time.monotonic() + 30
        while running.state is not JobState.RUNNING:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        client.submit(JobSpec(experiment="sleep:2.1"))
        with pytest.raises(AdmissionBusy) as excinfo:
            client.submit(JobSpec(experiment="sleep:2.2"))
        assert excinfo.value.retry_after > 0
    finally:
        server.stop()
        service.close()


def test_remote_watch_streams_until_done(remote):
    client, _service = remote
    blocker = client.submit(JobSpec(experiment="sleep:0.3"))
    status = client.submit(JobSpec(experiment="fig04", profile="ci",
                                   stream_interval=100))
    payloads = list(client.watch(status["job"]))
    assert payloads, "watch yielded nothing"
    assert "done" in payloads[-1]
    assert payloads[-1]["done"]["state"] == "done"
    kinds = {p.get("kind") for p in payloads[:-1]}
    assert "phase" in kinds or "event" in kinds
    client.result(blocker["job"], timeout=30)


def test_remote_metrics_snapshot(remote):
    client, _service = remote
    status = client.submit(JobSpec(experiment="sleep:0.1"))
    client.result(status["job"], timeout=30)
    metrics = client.metrics()
    assert metrics["completed"] == 1
    assert metrics["store"]["misses"] == 1
    assert len(metrics["workers"]) == 1
