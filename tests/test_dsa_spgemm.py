"""Integration tests for SpArch/Gamma (shared SpGEMM X-Cache)."""

import pytest

from repro.core.config import table3_config
from repro.data import SparseMatrix, spgemm_gustavson
from repro.dsa import (
    GammaAddressModel,
    GammaXCacheModel,
    SpArchAddressModel,
    SpArchXCacheModel,
    SpGEMMXCacheModel,
    element_trace,
)
from repro.workloads import dense_spgemm_input


@pytest.fixture(scope="module")
def matrices():
    return dense_spgemm_input(n=96, nnz_per_row=6, seed=9)


@pytest.fixture(scope="module")
def config():
    return table3_config("sparch", scale=0.125)


def test_element_trace_outer_is_column_major():
    a = SparseMatrix.from_dense([[1.0, 2.0], [0.0, 3.0]])
    trace = element_trace(a, "outer")
    # column 0 first (k=0), then column 1 (k=1) with both rows
    assert trace == [(0, 0, 1.0), (1, 0, 2.0), (1, 1, 3.0)]


def test_element_trace_gustavson_is_row_major():
    a = SparseMatrix.from_dense([[1.0, 2.0], [0.0, 3.0]])
    trace = element_trace(a, "gustavson")
    assert trace == [(0, 0, 1.0), (1, 0, 2.0), (1, 1, 3.0)]


def test_element_trace_rejects_unknown():
    with pytest.raises(ValueError):
        element_trace(SparseMatrix.identity(2), "bogus")


def test_sparch_produces_correct_product(matrices, config):
    a, b = matrices
    result = SpArchXCacheModel(a, b, config=config).run()
    assert result.checks_passed
    assert result.dsa == "sparch"


def test_gamma_produces_correct_product(matrices, config):
    a, b = matrices
    cfg = table3_config("gamma", scale=0.125)
    result = GammaXCacheModel(a, b, config=cfg).run()
    assert result.checks_passed
    assert result.dsa == "gamma"


def test_same_walker_binary_for_both(matrices, config):
    a, b = matrices
    sparch = SpArchXCacheModel(a, b, config=config)
    gamma = GammaXCacheModel(a, b, config=config)
    s_names = [r.name for r in sparch.system.controller.program.ram.routines]
    g_names = [r.name for r in gamma.system.controller.program.ram.routines]
    assert s_names == g_names  # literally the same program


def test_sparch_column_runs_reuse_rows(matrices, config):
    a, b = matrices
    result = SpArchXCacheModel(a, b, config=config).run()
    # every element after the first of a column run should hit or merge
    assert result.hits + result.extras["miss_merges"] > 0
    assert result.hit_rate > 0.3


def test_address_comparators_validate(matrices, config):
    a, b = matrices
    assert SpArchAddressModel(a, b, xcache_config=config).run().checks_passed
    assert GammaAddressModel(a, b, xcache_config=config).run().checks_passed


def test_shape_mismatch_rejected(config):
    a = SparseMatrix.identity(4)
    b = SparseMatrix.identity(5)
    with pytest.raises(ValueError):
        SpGEMMXCacheModel(a, b)
    with pytest.raises(ValueError):
        SpArchAddressModel(a, b)


def test_identity_product(config):
    eye = SparseMatrix.identity(16)
    result = SpArchXCacheModel(eye, eye, config=config).run()
    assert result.checks_passed


def test_empty_rows_handled(config):
    a = SparseMatrix.from_triplets(8, 8, [(0, 3, 1.0), (4, 3, 2.0)])
    b = SparseMatrix.from_triplets(8, 8, [(1, 1, 5.0)])  # row 3 empty
    result = SpArchXCacheModel(a, b, config=config).run()
    assert result.checks_passed
    ref = spgemm_gustavson(a, b)
    assert ref.nnz == 0


def test_preload_lookahead_reduces_latency(matrices, config):
    a, b = matrices
    no_pre = SpGEMMXCacheModel(a, b, "outer", config=config,
                               lookahead=1).run()
    with_pre = SpGEMMXCacheModel(a, b, "outer", config=config,
                                 lookahead=32).run()
    assert with_pre.checks_passed and no_pre.checks_passed
    assert with_pre.cycles <= no_pre.cycles * 1.05
