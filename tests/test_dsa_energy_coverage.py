"""Energy-model coverage across every DSA variant.

Each DSA family's run must produce a self-consistent energy breakdown:
positive totals, data-array dominance trends, and the programmability
cost (routine RAM) staying a small fraction — the invariants behind
Figures 15/16 at any workload size.
"""

import pytest

from repro.core.config import table3_config
from repro.dsa import (
    DasxXCacheModel,
    GammaXCacheModel,
    GraphPulseXCacheModel,
    SpArchXCacheModel,
    WidxXCacheModel,
)
from repro.workloads import (
    dense_spgemm_input,
    make_widx_workload,
    powerlaw_graph,
)


@pytest.fixture(scope="module")
def runs():
    out = {}
    wl = make_widx_workload(num_keys=512, num_probes=1024, num_buckets=256,
                            skew=1.3, hash_cycles=20, seed=3)
    out["widx"] = WidxXCacheModel(
        wl, config=table3_config("widx", scale=0.0625)).run()
    out["dasx"] = DasxXCacheModel(
        wl, config=table3_config("dasx", scale=0.0625)).run()
    graph = powerlaw_graph(300, 1000, seed=5)
    out["graphpulse"] = GraphPulseXCacheModel(graph, num_pes=4).run()
    a, b = dense_spgemm_input(n=96, nnz_per_row=6, seed=5)
    out["sparch"] = SpArchXCacheModel(
        a, b, config=table3_config("sparch", scale=0.125)).run()
    out["gamma"] = GammaXCacheModel(
        a, b, config=table3_config("gamma", scale=0.125)).run()
    return out


@pytest.mark.parametrize("dsa", ["widx", "dasx", "graphpulse", "sparch",
                                 "gamma"])
def test_every_component_nonnegative(runs, dsa):
    energy = runs[dsa].energy
    assert energy is not None
    assert energy.total_pj > 0
    for name, pj in energy.components.items():
        assert pj >= 0.0, name


@pytest.mark.parametrize("dsa", ["widx", "dasx", "graphpulse", "sparch",
                                 "gamma"])
def test_routine_ram_is_minor(runs, dsa):
    """Programmability must stay a small fraction (paper: <4.2%)."""
    assert runs[dsa].energy.share("routine_ram") < 0.20


@pytest.mark.parametrize("dsa", ["widx", "dasx", "graphpulse", "sparch",
                                 "gamma"])
def test_power_positive_and_finite(runs, dsa):
    power = runs[dsa].energy.power_mw()
    assert 0.0 < power < 1e5


def test_sparch_data_dominates(runs):
    """Multi-sector row traffic makes data the dominant component."""
    assert runs["sparch"].energy.share("data_ram") > 0.5


def test_graphpulse_no_walk_energy(runs):
    """The event walker never touches DRAM; AGEN stays tiny."""
    assert runs["graphpulse"].energy.share("agen_alu") < 0.15


def test_hash_dsa_pays_agen(runs):
    """Widx misses hash + chase: visible AGEN share."""
    assert runs["widx"].energy.share("agen_alu") > \
        runs["graphpulse"].energy.share("agen_alu")


@pytest.mark.parametrize("dsa", ["widx", "dasx", "graphpulse", "sparch",
                                 "gamma"])
def test_all_runs_validated(runs, dsa):
    assert runs[dsa].checks_passed
