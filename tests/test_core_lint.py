"""Tests for the walker linter."""

import pytest

from repro.core import (
    EV_FILL,
    EV_META_LOAD,
    IMM,
    MSG,
    R,
    Transition,
    WalkerSpec,
    XCacheConfig,
    check_context,
    compile_walker,
    lint_walker,
    max_register,
    op,
)


def walker(*transitions):
    return compile_walker(WalkerSpec("t", tuple(transitions)))


def test_shipped_walkers_are_clean():
    from repro.dsa.walkers import (
        build_btree_walker,
        build_event_walker,
        build_hash_walker,
        build_row_walker,
    )
    cfg = XCacheConfig(xregs_per_walker=16)
    for program in (build_hash_walker(64, 10), build_row_walker(),
                    build_event_walker(), build_btree_walker()):
        assert lint_walker(program, cfg) == [], program.name


def test_read_before_write_in_entry_routine():
    program = walker(Transition("Default", EV_META_LOAD, (
        op.allocM(),
        op.addi(R(1), R(0), 4),   # R0 never written
        op.finish(),
    )))
    findings = lint_walker(program)
    assert any(f.check == "read-before-write" and "R0" in f.message
               for f in findings)


def test_write_then_read_is_clean():
    program = walker(Transition("Default", EV_META_LOAD, (
        op.allocM(),
        op.mov(R(0), MSG("key")),
        op.addi(R(1), R(0), 4),
        op.finish(),
    )))
    assert lint_walker(program) == []


def test_unreachable_action_detected():
    program = walker(Transition("Default", EV_META_LOAD, (
        op.allocM(),
        op.jmp("end"),
        op.mov(R(0), IMM(1)),     # skipped by the unconditional jump
        op.lbl("end"),
        op.finish(),
    )))
    findings = lint_walker(program)
    assert any(f.check == "unreachable-action" for f in findings)


def test_unreachable_transition_detected():
    program = walker(
        Transition("Default", EV_META_LOAD, (op.allocM(), op.finish())),
        Transition("Orphan", EV_FILL, (op.finish(),)),
    )
    findings = lint_walker(program)
    assert any(f.check == "unreachable-transition"
               and "Orphan" in f.message for f in findings)


def test_missing_fill_transition_is_error():
    program = walker(Transition("Default", EV_META_LOAD, (
        op.allocM(),
        op.mov(R(0), MSG("addr")),
        op.enq_dram(addr=R(0)),
        op.state("Waiting"),      # but no [Waiting, Fill] routine
    )))
    findings = lint_walker(program)
    errors = [f for f in findings if f.severity == "error"]
    assert any(f.check == "missing-transition" for f in errors)


def test_fill_transition_present_is_clean():
    program = walker(
        Transition("Default", EV_META_LOAD, (
            op.allocM(),
            op.mov(R(0), MSG("addr")),
            op.enq_dram(addr=R(0)),
            op.state("Waiting"),
        )),
        Transition("Waiting", EV_FILL, (op.finish(),)),
    )
    assert not [f for f in lint_walker(program)
                if f.check == "missing-transition"]


def test_context_overflow():
    program = walker(Transition("Default", EV_META_LOAD, (
        op.allocM(),
        op.mov(R(12), IMM(1)),
        op.finish(),
    )))
    findings = check_context(program, XCacheConfig(xregs_per_walker=8))
    assert findings and findings[0].severity == "error"
    assert "R12" in findings[0].message
    assert check_context(program, XCacheConfig(xregs_per_walker=16)) == []


def test_max_register():
    program = walker(Transition("Default", EV_META_LOAD, (
        op.allocM(),
        op.mov(R(3), IMM(1)),
        op.add(R(7), R(3), R(3)),
        op.finish(),
    )))
    assert max_register(program) == 7


def test_findings_sorted_errors_first():
    program = walker(
        Transition("Default", EV_META_LOAD, (
            op.allocM(),
            op.addi(R(1), R(0), 1),     # warning: read-before-write
            op.enq_dram(addr=R(1)),
            op.state("Nowhere"),        # error: missing Fill handler
        )),
    )
    findings = lint_walker(program)
    assert findings[0].severity == "error"


def test_finding_render():
    program = walker(Transition("Default", EV_META_LOAD, (
        op.allocM(),
        op.addi(R(1), R(0), 1),
        op.finish(),
    )))
    text = lint_walker(program)[0].render()
    assert "read-before-write" in text and "Default@MetaLoad" in text
