"""Tests for machine-readable experiment exports."""

import csv
import io
import json

import pytest

from repro.harness import run_experiment
from repro.harness.export import (
    report_to_csv,
    report_to_dict,
    report_to_json,
    write_run,
)
from repro.harness.report import ExperimentReport


@pytest.fixture(scope="module")
def report():
    return run_experiment("tab03", "quick")


def test_dict_roundtrips_content(report):
    d = report_to_dict(report)
    assert d["exp_id"] == "tab03"
    assert d["headers"][0] == "DSA"
    assert len(d["rows"]) == 5
    assert d["all_ok"] is True
    assert all(e["ok"] for e in d["expectations"])


def test_json_is_valid(report):
    parsed = json.loads(report_to_json(report))
    assert parsed["exp_id"] == "tab03"
    assert isinstance(parsed["rows"], list)


def test_csv_parses_back(report):
    rows = list(csv.reader(io.StringIO(report_to_csv(report))))
    assert rows[0][0] == "DSA"
    assert len(rows) == 6  # header + 5 DSAs
    widx = next(r for r in rows if r[0] == "Widx")
    assert widx[1:6] == ["16", "2", "8", "1024", "4"]


def test_write_run(tmp_path):
    written = write_run(tmp_path, ["tab04", "fig20"], profile="quick")
    names = {p.name for p in written}
    assert names == {"tab04.json", "tab04.csv", "fig20.json", "fig20.csv",
                     "summary.json"}
    summary = json.loads((tmp_path / "summary.json").read_text())
    assert summary["experiments"]["tab04"]["all_ok"] is True
    assert summary["profile"] == "quick"


def test_export_handles_empty_report():
    empty = ExperimentReport("x", "t", ["a"])
    assert json.loads(report_to_json(empty))["rows"] == []
    assert report_to_csv(empty).strip() == "a"
