"""Tests for JSONL and Chrome-trace (Perfetto) export."""

import io
import json

from repro.obs import (
    DRAMComplete,
    DRAMIssue,
    EventBus,
    Hit,
    JsonlExporter,
    Merge,
    Miss,
    PerfettoExporter,
    RunEnd,
    RunStart,
    WalkerDispatch,
    WalkerRetire,
    event_to_dict,
)


def test_event_to_dict_flattens_and_names():
    d = event_to_dict(Hit(cycle=5, component="ctl", tag=(1, 2),
                          take=True, load_to_use=3))
    assert d == {"event": "hit", "cycle": 5, "component": "ctl",
                 "tag": [1, 2], "store": False, "take": True,
                 "load_to_use": 3, "req_id": -1, "status": 1}


def test_event_to_dict_extra_keys():
    d = event_to_dict(RunStart(cycle=0, component="kernel"),
                      extra={"run": 3})
    assert d["run"] == 3 and d["event"] == "run_start"


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def test_jsonl_exporter_to_stream():
    out = io.StringIO()
    bus = EventBus()
    exporter = bus.attach(JsonlExporter(out, extra={"run": 0}))
    bus.publish(Hit(cycle=1, component="ctl", tag=(1,)))
    bus.publish(Miss(cycle=2, component="ctl", tag=(2,), op="MetaLoad"))
    bus.close()
    lines = out.getvalue().strip().splitlines()
    assert exporter.events_written == 2
    records = [json.loads(line) for line in lines]
    assert [r["event"] for r in records] == ["hit", "miss"]
    assert all(r["run"] == 0 for r in records)


def test_jsonl_exporter_to_path(tmp_path):
    path = tmp_path / "events.jsonl"
    bus = EventBus()
    bus.attach(JsonlExporter(str(path)))
    bus.publish(Hit(cycle=1, component="ctl", tag=(1,)))
    bus.close()
    [record] = [json.loads(l) for l in path.read_text().splitlines()]
    assert record["event"] == "hit" and record["tag"] == [1]


def test_jsonl_exporter_lazy_open(tmp_path):
    path = tmp_path / "never.jsonl"
    exporter = JsonlExporter(str(path))
    exporter.close()
    assert not path.exists()


# ----------------------------------------------------------------------
# Perfetto: synthetic stream
# ----------------------------------------------------------------------
def _walk_stream(bus):
    bus.publish(RunStart(cycle=0, component="kernel"))
    bus.publish(Miss(cycle=1, component="ctl", tag=(7,), op="MetaLoad"))
    bus.publish(WalkerDispatch(cycle=1, component="ctl", tag=(7,),
                               routine="Default@MetaLoad"))
    bus.publish(DRAMIssue(cycle=3, component="dram", addr=4096,
                          is_write=False, bank=2, row_result="row_misses",
                          complete_at=29))
    bus.publish(DRAMComplete(cycle=29, component="dram", addr=4096,
                             latency=26))
    bus.publish(WalkerRetire(cycle=31, component="ctl", tag=(7,),
                             found=True, lifetime=30))
    bus.publish(RunEnd(cycle=31, component="kernel", events_executed=42))


def test_perfetto_structure_synthetic(tmp_path):
    path = tmp_path / "trace.json"
    bus = EventBus()
    bus.attach(PerfettoExporter(str(path)))
    _walk_stream(bus)
    bus.close()

    payload = json.loads(path.read_text())
    assert isinstance(payload["traceEvents"], list)
    events = payload["traceEvents"]

    walk_spans = [e for e in events
                  if e["ph"] == "X" and e["cat"] == "walker"]
    assert len(walk_spans) == 1
    span = walk_spans[0]
    assert span["ts"] == 1 and span["dur"] == 30
    assert span["args"]["found"] is True

    routine_slices = [e for e in events
                      if e["ph"] == "X" and e["cat"] == "routine"]
    assert len(routine_slices) == 1
    assert routine_slices[0]["name"] == "Default@MetaLoad"
    assert routine_slices[0]["tid"] == span["tid"]

    begins = [e for e in events if e["ph"] == "b"]
    ends = [e for e in events if e["ph"] == "e"]
    assert len(begins) == len(ends) == 1
    assert begins[0]["id"] == ends[0]["id"]
    assert begins[0]["args"]["bank"] == 2

    instants = [e for e in events if e["ph"] == "i"]
    assert {e["name"] for e in instants} == {"run_start", "run_end"}

    # every X event carries a duration; every pid is named
    assert all("dur" in e for e in events if e["ph"] == "X")
    named = {e["pid"] for e in events
             if e["ph"] == "M" and e["name"] == "process_name"}
    used = {e["pid"] for e in events if e["ph"] != "M"}
    assert used <= named


def test_perfetto_lane_reuse():
    exporter = PerfettoExporter(io.StringIO())
    bus = EventBus()
    bus.attach(exporter)
    # two concurrent walks -> two lanes; after both retire a third
    # walk reclaims the lowest lane
    for tag in ((1,), (2,)):
        bus.publish(Miss(cycle=0, component="ctl", tag=tag, op="L"))
    for tag in ((1,), (2,)):
        bus.publish(WalkerRetire(cycle=10, component="ctl", tag=tag,
                                 found=True, lifetime=10))
    bus.publish(Miss(cycle=20, component="ctl", tag=(3,), op="L"))
    bus.publish(WalkerRetire(cycle=25, component="ctl", tag=(3,),
                             found=False, lifetime=5))
    spans = [e for e in exporter.trace_events
             if e["ph"] == "X" and e["cat"] == "walker"]
    assert sorted(e["tid"] for e in spans) == [1, 1, 2]


def test_perfetto_new_run_namespaces_pids():
    exporter = PerfettoExporter(io.StringIO())
    bus = EventBus()
    bus.attach(exporter)
    bus.publish(RunStart(cycle=0, component="kernel"))
    exporter.new_run()
    bus.publish(RunStart(cycle=0, component="kernel"))
    names = [e["args"]["name"] for e in exporter.trace_events
             if e["ph"] == "M" and e["name"] == "process_name"]
    assert names == ["kernel", "run1/kernel"]


# ----------------------------------------------------------------------
# Perfetto: edge cases (empty runs, dropped events)
# ----------------------------------------------------------------------
def test_perfetto_empty_run_is_valid_json(tmp_path):
    """A capture that saw no events still writes a loadable trace."""
    path = tmp_path / "empty.json"
    bus = EventBus()
    bus.attach(PerfettoExporter(str(path)))
    bus.close()
    payload = json.loads(path.read_text())
    assert payload["traceEvents"] == []
    assert payload["otherData"]["time_unit"] == "cycle"


def test_perfetto_tolerates_dropped_events():
    """A ring buffer may drop the opening events of a walk (Miss /
    Dispatch / DRAMIssue); the orphaned closers must be skipped, not
    crash or emit dangling spans."""
    exporter = PerfettoExporter(io.StringIO())
    bus = EventBus()
    bus.attach(exporter)
    # retire without a miss, routine end without a dispatch,
    # completion without an issue
    bus.publish(WalkerRetire(cycle=31, component="ctl", tag=(7,),
                             found=True, lifetime=30))
    bus.publish(DRAMComplete(cycle=29, component="dram", addr=4096,
                             latency=26))
    events = exporter.trace_events
    assert not [e for e in events if e["ph"] == "X"]
    assert not [e for e in events if e["ph"] in ("b", "e")]
    # ...and a subsequent intact walk still exports fully
    _walk_stream(bus)
    spans = [e for e in exporter.trace_events
             if e["ph"] == "X" and e["cat"] == "walker"]
    assert len(spans) == 1 and spans[0]["dur"] == 30


def test_perfetto_dropped_opening_events_in_stream(tmp_path):
    """Start mid-stream (as after ring-buffer wrap): valid output."""
    path = tmp_path / "wrapped.json"
    bus = EventBus()
    bus.attach(PerfettoExporter(str(path)))
    # wake/yield-ish closers for a walk whose opening was dropped
    bus.publish(DRAMComplete(cycle=5, component="dram", addr=64,
                             latency=20))
    bus.publish(WalkerRetire(cycle=9, component="ctl", tag=(1,),
                             found=False, lifetime=9))
    bus.publish(RunEnd(cycle=9, component="kernel", events_executed=3))
    bus.close()
    payload = json.loads(path.read_text())
    phases = {e["ph"] for e in payload["traceEvents"]}
    assert "i" in phases          # the RunEnd instant survived
    assert "X" not in phases      # no fabricated spans


# ----------------------------------------------------------------------
# Perfetto: a real system run
# ----------------------------------------------------------------------
def test_perfetto_real_run_structurally_valid(tmp_path, mini_system):
    path = tmp_path / "trace.json"
    exporter = mini_system.observe(PerfettoExporter(str(path)))
    addr = mini_system.image.alloc_u64_array(list(range(4)))
    for i in range(4):
        mini_system.load((i,), walk_fields={"addr": addr + 8 * i})
    mini_system.run()
    exporter.close()

    payload = json.loads(path.read_text())
    events = payload["traceEvents"]
    assert payload["otherData"]["time_unit"] == "cycle"

    walk_spans = [e for e in events
                  if e["ph"] == "X" and e["cat"] == "walker"]
    assert len(walk_spans) == 4
    assert all(e["dur"] >= 1 for e in walk_spans)

    begins = [e for e in events if e["ph"] == "b"]
    ends = [e for e in events if e["ph"] == "e"]
    assert len(begins) == 4 and len(ends) == 4
    assert sorted(e["id"] for e in begins) == sorted(e["id"] for e in ends)

    # dispatch->retire span contains its routine slices
    for span in walk_spans:
        inner = [e for e in events
                 if e["ph"] == "X" and e["cat"] == "routine"
                 and e["pid"] == span["pid"] and e["tid"] == span["tid"]
                 and span["ts"] <= e["ts"] <= span["ts"] + span["dur"]]
        assert inner, f"walk span without routine slices: {span}"


# ----------------------------------------------------------------------
# request-journey flow arrows
# ----------------------------------------------------------------------
def test_perfetto_flow_arrows_link_requests_to_walks():
    exporter = PerfettoExporter(io.StringIO())
    for ev in (
        Miss(cycle=2, component="ctl", tag=(1,), op="load", req_id=1,
             walk_id=7),
        Merge(cycle=4, component="ctl", tag=(1,), req_id=2, walk_id=7),
        WalkerRetire(cycle=30, component="ctl", tag=(1,), found=True,
                     lifetime=28, walk_id=7, served=(1, 2)),
    ):
        exporter.handle(ev)
    te = exporter.trace_events

    starts = [e for e in te if e["ph"] == "s"]
    steps = [e for e in te if e["ph"] == "t"]
    finishes = [e for e in te if e["ph"] == "f"]
    assert {e["name"] for e in starts} == {"req 1", "req 2"}
    assert len(finishes) == 2
    assert all(e["bp"] == "e" for e in finishes)
    # ids and cat/name match across each request's s -> t -> f chain
    for name in ("req 1", "req 2"):
        chain = [e for e in starts + steps + finishes if e["name"] == name]
        assert len({e["id"] for e in chain}) == 1
        assert all(e["cat"] == "request" for e in chain)
    # finish lands on the walk's lane at the retire cycle
    walk_span = next(e for e in te if e["ph"] == "X"
                     and e["cat"] == "walker")
    for e in finishes:
        assert e["tid"] == walk_span["tid"] and e["ts"] == 30
    # 1-cycle marker slices tell miss and merge apart on the scheduler
    markers = [e["name"] for e in te
               if e["ph"] == "X" and e["cat"] == "request"]
    assert markers == ["req 1 miss", "req 2 merge"]


def test_perfetto_flow_skips_uncorrelated_requests():
    exporter = PerfettoExporter(io.StringIO())
    exporter.handle(Miss(cycle=2, component="ctl", tag=(1,), op="load",
                         walk_id=7))               # req_id=-1
    exporter.handle(WalkerRetire(cycle=9, component="ctl", tag=(1,),
                                 lifetime=7, walk_id=7))
    assert not any(e["ph"] in ("s", "t", "f")
                   for e in exporter.trace_events)


def test_perfetto_walks_keyed_by_walk_id_not_tag():
    """Two concurrent walks of the same tag stay distinct episodes."""
    exporter = PerfettoExporter(io.StringIO())
    for ev in (
        Miss(cycle=0, component="ctl", tag=(5,), op="load", req_id=1,
             walk_id=1),
        Miss(cycle=1, component="ctl", tag=(5,), op="load", req_id=2,
             walk_id=2),
        WalkerRetire(cycle=10, component="ctl", tag=(5,), lifetime=10,
                     walk_id=1, served=(1,)),
        WalkerRetire(cycle=20, component="ctl", tag=(5,), lifetime=19,
                     walk_id=2, served=(2,)),
    ):
        exporter.handle(ev)
    walk_spans = [e for e in exporter.trace_events
                  if e["ph"] == "X" and e["cat"] == "walker"]
    assert len(walk_spans) == 2
    assert {e["tid"] for e in walk_spans} == {1, 2}  # separate lanes


def test_perfetto_flow_arrows_on_real_run(mini_system, tmp_path):
    path = tmp_path / "trace.json"
    exporter = mini_system.observe(PerfettoExporter(str(path)))
    addr = mini_system.image.alloc_u64_array(list(range(8)))
    for i in range(8):
        mini_system.load((i,), walk_fields={"addr": addr + 8 * i})
    mini_system.run()
    exporter.close()

    events = json.loads(path.read_text())["traceEvents"]
    starts = [e for e in events if e["ph"] == "s"]
    finishes = [e for e in events if e["ph"] == "f"]
    assert len(starts) == 8 and len(finishes) == 8
    assert {e["id"] for e in starts} == {e["id"] for e in finishes}
