"""Unit tests for latency-insensitive message queues."""

import pytest

from repro.sim import (
    STATS_FULL,
    STATS_OFF,
    MessageQueue,
    QueueEmptyError,
    QueueFullError,
    stats_level,
    stats_scope,
)


def test_fifo_order():
    q = MessageQueue()
    q.enq_all([1, 2, 3])
    assert [q.deq(), q.deq(), q.deq()] == [1, 2, 3]


def test_ready_valid_unbounded():
    q = MessageQueue()
    assert q.ready
    assert not q.valid
    q.enq("x")
    assert q.ready and q.valid


def test_bounded_capacity_backpressure():
    q = MessageQueue(capacity=2)
    q.enq(1)
    q.enq(2)
    assert not q.ready
    with pytest.raises(QueueFullError):
        q.enq(3)
    q.deq()
    assert q.ready


def test_deq_empty_raises():
    with pytest.raises(QueueEmptyError):
        MessageQueue().deq()


def test_peek_does_not_consume():
    q = MessageQueue()
    q.enq("a")
    assert q.peek() == "a"
    assert len(q) == 1


def test_peek_empty_raises():
    with pytest.raises(QueueEmptyError):
        MessageQueue().peek()


def test_on_push_callback_fires_per_enqueue():
    calls = []
    q = MessageQueue(on_push=lambda: calls.append(1))
    q.enq(1)
    q.enq(2)
    assert len(calls) == 2


def test_statistics_track_traffic():
    q = MessageQueue()
    q.enq_all(range(5))
    q.deq()
    q.deq()
    assert q.total_enqueued == 5
    assert q.total_dequeued == 2
    assert q.peak_depth == 5


def test_window_returns_prefix_without_consuming():
    q = MessageQueue()
    q.enq_all([10, 20, 30, 40])
    assert q.window(2) == [10, 20]
    assert q.window(10) == [10, 20, 30, 40]
    assert len(q) == 4


def test_remove_specific_item():
    q = MessageQueue()
    q.enq_all(["a", "b", "c"])
    q.remove("b")
    assert q.drain() == ["a", "c"]


def test_remove_missing_raises():
    q = MessageQueue()
    q.enq("a")
    with pytest.raises(QueueEmptyError):
        q.remove("z")


def test_remove_counts_as_dequeue():
    q = MessageQueue()
    q.enq_all([1, 2])
    q.remove(2)
    assert q.total_dequeued == 1


def test_drain_empties_queue():
    q = MessageQueue()
    q.enq_all([1, 2, 3])
    assert q.drain() == [1, 2, 3]
    assert not q.valid


def test_bool_reflects_emptiness():
    q = MessageQueue()
    assert not q
    q.enq(0)
    assert q


# ----------------------------------------------------------------------
# stats gating
# ----------------------------------------------------------------------

def test_default_level_keeps_full_stats():
    # Fig. 7's occupancy study reads traffic counters and peak depth off
    # harness-constructed queues; the default level must keep them live.
    assert stats_level() == STATS_FULL
    q = MessageQueue()
    q.enq_all(range(4))
    q.deq()
    assert q.total_enqueued == 4
    assert q.total_dequeued == 1
    assert q.peak_depth == 4


def test_stats_off_skips_counters():
    with stats_scope(STATS_OFF):
        q = MessageQueue()
    q.enq_all(range(4))
    q.deq()
    assert q.total_enqueued == 0
    assert q.total_dequeued == 0
    assert q.peak_depth == 0
    # functional behaviour is untouched
    assert len(q) == 3
    assert q.deq() == 1


def test_stats_level_sampled_at_construction():
    with stats_scope(STATS_OFF):
        cold = MessageQueue()
    hot = MessageQueue()
    cold.enq(1)
    hot.enq(1)
    assert cold.total_enqueued == 0
    assert hot.total_enqueued == 1


def test_stats_scope_restores_level():
    before = stats_level()
    with stats_scope(STATS_OFF):
        assert stats_level() == STATS_OFF
    assert stats_level() == before
