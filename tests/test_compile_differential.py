"""Differential acceptance for routine and trace compilation.

The compiled back-end is only a performance change; interpreted, fused,
and episode-traced execution must be cycle-for-cycle indistinguishable.
These tests run every DSA model at tiny scale under ``compile_mode``
off/on/verify crossed with trace compilation off/eager and DRAM
batching on/off, comparing per-cycle trace digests; force a recorded
guard to fail and check the deopt is invisible; run the fig14 ci suite
with lockstep verification armed; and check the profiler/span-tree
conservation invariants hold on traced runs.
"""

import pytest

from repro.core.config import COMPILE_MODE_ENV
from repro.core.messages import reset_ids
from repro.harness.suite import SUITE_CACHE_ENV, clear_cache, run_fig14_suite
from repro.mem.dram import DRAM_BATCH_ENV
from repro.sim import Tracer
from repro.workloads.graphgen import p2p_gnutella08
from repro.workloads.matrices import dense_spgemm_input
from repro.workloads.tpch import make_widx_workload


def _widx(mode, **over):
    from dataclasses import replace

    from repro.core.config import table3_config
    from repro.dsa.widx import WidxXCacheModel

    workload = make_widx_workload(num_keys=256, num_probes=512,
                                  num_buckets=256, skew=1.3,
                                  hash_cycles=10, seed=3)
    cfg = replace(table3_config("widx", scale=0.0625),
                  compile_mode=mode, **over)
    return WidxXCacheModel(workload, config=cfg)


def _dasx(mode, **over):
    from dataclasses import replace

    from repro.core.config import table3_config
    from repro.dsa.dasx import DasxXCacheModel

    workload = make_widx_workload(num_keys=256, num_probes=256,
                                  num_buckets=128, skew=1.3,
                                  hash_cycles=30, seed=4, name="dasx")
    cfg = replace(table3_config("dasx", scale=0.0625),
                  compile_mode=mode, **over)
    return DasxXCacheModel(workload, config=cfg)


def _sparch(mode, **over):
    from dataclasses import replace

    from repro.core.config import table3_config
    from repro.dsa.sparch import SpArchXCacheModel

    a, b = dense_spgemm_input(n=64, nnz_per_row=4, seed=7)
    cfg = replace(table3_config("sparch", scale=0.25),
                  compile_mode=mode, **over)
    return SpArchXCacheModel(a, b, config=cfg)


def _gamma(mode, **over):
    from dataclasses import replace

    from repro.core.config import table3_config
    from repro.dsa.gamma import GammaXCacheModel

    a, b = dense_spgemm_input(n=64, nnz_per_row=4, seed=7)
    cfg = replace(table3_config("gamma", scale=0.25),
                  compile_mode=mode, **over)
    return GammaXCacheModel(a, b, config=cfg)


def _graphpulse(mode, **over):
    from dataclasses import replace

    from repro.dsa.graphpulse import GraphPulseXCacheModel, graphpulse_config

    graph = p2p_gnutella08(scale=0.02, seed=7)
    cfg = replace(graphpulse_config(graph.num_vertices),
                  compile_mode=mode, **over)
    return GraphPulseXCacheModel(graph, config=cfg, num_pes=2)


_MODELS = {
    "widx": _widx,
    "dasx": _dasx,
    "sparch": _sparch,
    "gamma": _gamma,
    "graphpulse": _graphpulse,
}


def _traced_run(make, mode, **over):
    reset_ids()
    model = make(mode, **over)
    tracer = Tracer(capacity=2_000_000)
    model.system.controller.tracer = tracer
    result = model.run()
    return tracer.digest(), result, model


@pytest.mark.parametrize("dsa", sorted(_MODELS))
def test_digest_identical_off_vs_on(dsa):
    make = _MODELS[dsa]
    off_digest, off_result, _ = _traced_run(make, "off")
    on_digest, on_result, _ = _traced_run(make, "on")
    assert on_digest == off_digest
    assert on_result.cycles == off_result.cycles


@pytest.mark.parametrize("dsa", ["widx", "sparch"])
def test_digest_identical_under_verify(dsa):
    """Verify mode runs fused + interpreter in lockstep — same trace."""
    make = _MODELS[dsa]
    off_digest, _, _ = _traced_run(make, "off")
    verify_digest, _, _ = _traced_run(make, "verify")
    assert verify_digest == off_digest


@pytest.mark.parametrize("dsa", sorted(_MODELS))
def test_digest_identical_with_episode_traces(dsa):
    """Eager trace compilation (threshold 1) fires on every DSA and
    changes nothing observable vs blocks-only and interpreter runs."""
    make = _MODELS[dsa]
    off_digest, off_result, _ = _traced_run(make, "off")
    blocks_digest, blocks_result, _ = _traced_run(
        make, "on", trace_threshold=0)
    traced_digest, traced_result, model = _traced_run(
        make, "on", trace_threshold=1)
    assert blocks_digest == off_digest
    assert traced_digest == off_digest
    assert (traced_result.cycles == off_result.cycles
            == blocks_result.cycles)
    ts = model.system.controller.trace_stats
    assert ts.installs >= 1, "no trace ever compiled"
    assert ts.dispatches >= 1, "no episode ran through a trace"


@pytest.mark.parametrize("dsa", ["widx", "sparch"])
def test_digest_identical_traces_under_verify(dsa):
    """Trace closures in verify mode run guard-by-guard against the
    interpreter — same per-cycle digest as interpreted execution."""
    make = _MODELS[dsa]
    off_digest, _, _ = _traced_run(make, "off")
    verify_digest, _, model = _traced_run(make, "verify",
                                          trace_threshold=1)
    assert verify_digest == off_digest
    assert model.system.controller.trace_stats.dispatches >= 1


@pytest.mark.parametrize("dsa", ["sparch", "gamma"])
def test_digest_identical_without_dram_batch(dsa, monkeypatch):
    """The vectorized DRAM batch path is timing-identical to issuing
    each block through the scalar request() loop."""
    make = _MODELS[dsa]
    batched_digest, batched_result, _ = _traced_run(make, "on")
    monkeypatch.setenv(DRAM_BATCH_ENV, "0")
    scalar_digest, scalar_result, _ = _traced_run(make, "on")
    assert scalar_digest == batched_digest
    assert scalar_result.cycles == batched_result.cycles


def _branchy_walker():
    """A walker whose entry routine branches on a message field — the
    recorded hot path inlines the branch as a guard, so flipping the
    field after recording forces a mid-trace guard failure."""
    from repro.core import (EV_FILL, EV_META_LOAD, IMM, MSG, R, Transition,
                            WalkerSpec, compile_walker, op)

    spec = WalkerSpec(
        name="branchy",
        transitions=(
            Transition("Default", EV_META_LOAD, (
                op.allocM(),                       # 0
                op.mov(R(0), MSG("sel")),          # 1
                op.bnz(R(0), target=5),            # 2: guard under trace
                op.mov(R(1), MSG("addr")),         # 3: sel == 0 path
                op.beq(IMM(0), IMM(0), target=6),  # 4: jump over alt path
                op.mov(R(1), MSG("alt")),          # 5: sel != 0 path
                op.enq_dram(addr=R(1)),            # 6
                op.state("Wait"),                  # 7
            )),
            Transition("Wait", EV_FILL, (
                op.finish(),
            )),
        ),
    )
    return compile_walker(spec)


def test_forced_guard_failure_deopts_cleanly():
    """Flip a traced branch after recording: the guard must fail, the
    deopt must be invisible (byte-identical digests vs the interpreter
    and the blocks-only compiler), and verify mode must agree."""
    from repro.core import XCacheConfig, XCacheSystem

    def drive(mode, threshold):
        reset_ids()
        config = XCacheConfig(ways=2, sets=8, data_sectors=128,
                              num_active=4, num_exe=2, xregs_per_walker=8,
                              compile_mode=mode, trace_threshold=threshold)
        system = XCacheSystem(config, _branchy_walker())
        tracer = Tracer(capacity=500_000)
        system.controller.tracer = tracer
        base = system.image.alloc_u64_array(list(range(128)))
        for i in range(24):
            sel = 1 if i >= 16 else 0   # recorded path sees sel == 0
            system.load((i,), walk_fields={"sel": sel,
                                           "addr": base + 8 * (i % 8),
                                           "alt": base + 512 + 8 * (i % 8)})
        system.run()
        return tracer.digest(), system.controller

    off_digest, _ = drive("off", 0)
    blocks_digest, _ = drive("on", 0)
    traced_digest, ctrl = drive("on", 4)
    verify_digest, vctrl = drive("verify", 4)
    assert blocks_digest == off_digest
    assert traced_digest == off_digest
    assert verify_digest == off_digest
    assert ctrl.trace_stats.installs >= 1
    assert ctrl.trace_stats.dispatches >= 1
    assert ctrl.trace_stats.deopts >= 1, \
        "flipping sel never failed a trace guard"
    assert vctrl.trace_stats.deopts >= 1


def test_fig14_ci_suite_under_verify(monkeypatch):
    """Acceptance: the whole ci suite passes lockstep verification."""
    monkeypatch.delenv(SUITE_CACHE_ENV, raising=False)
    monkeypatch.setenv(COMPILE_MODE_ENV, "verify")
    clear_cache()                      # memoized results bypass execution
    try:
        suite = run_fig14_suite("ci")
    finally:
        clear_cache()                  # don't leak verify-mode results
    assert set(suite) == {"TPC-H-19", "TPC-H-20", "TPC-H-22", "dasx",
                          "graphpulse", "sparch", "gamma"}
    for label, variants in suite.items():
        assert variants.xcache.cycles > 0, label


def test_prof_conservation_under_compiled_execution(mini_walker,
                                                    mini_config):
    """obs.prof's attributed-cycles == lifetime invariant survives fused
    execution (satellite of the routine-compilation issue)."""
    from dataclasses import replace

    from repro.core import XCacheSystem
    from repro.obs.prof import ProfileProcessor

    stacks = {}
    for mode in ("off", "on"):
        reset_ids()
        system = XCacheSystem(
            replace(mini_config, compile_mode=mode, num_exe=4), mini_walker)
        prof = system.observe(ProfileProcessor())
        addr = system.image.alloc_u64_array(list(range(8)))
        for i in range(8):
            system.load((i,), walk_fields={"addr": addr + 8 * i})
        system.run()
        assert prof.contexts_retired == 8
        assert prof.conservation_ok, prof.mismatches
        assert prof.contexts_open == 0
        stacks[mode] = dict(prof.stacks)
    # identical attribution, not merely internally consistent
    assert stacks["on"] == stacks["off"]


def test_prof_and_spans_survive_episode_traces(mini_walker, mini_config):
    """Multi-action episode closures retire whole walks in one dispatch;
    the profiler's conservation invariant and the span trees' phase
    tiling must hold regardless (satellite of the trace issue)."""
    from dataclasses import replace

    from repro.core import XCacheSystem
    from repro.obs.prof import ProfileProcessor
    from repro.obs.spans import SpanAssembler

    stacks = {}
    for threshold in (0, 1):
        reset_ids()
        system = XCacheSystem(
            replace(mini_config, compile_mode="on", num_exe=4,
                    trace_threshold=threshold), mini_walker)
        prof = system.observe(ProfileProcessor())
        spans = system.observe(SpanAssembler())
        addr = system.image.alloc_u64_array(list(range(8)))
        for i in range(8):
            system.load((i,), walk_fields={"addr": addr + 8 * i})
        system.run()
        assert prof.contexts_retired == 8
        assert prof.conservation_ok, prof.mismatches
        assert prof.contexts_open == 0
        assert spans.walks_open == 0
        walks_seen = 0
        for span in spans.completed:
            for episode in span.episodes:
                walk = episode.walk
                walks_seen += 1
                # phases tile [admitted, retired) with no gaps/overlaps
                mark = walk.admitted
                for phase in walk.phases:
                    assert phase.start == mark, (threshold, walk)
                    assert phase.end > phase.start
                    mark = phase.end
                assert mark == walk.retired, (threshold, walk)
        assert walks_seen >= 8
        stacks[threshold] = dict(prof.stacks)
        if threshold == 1:
            assert system.controller.trace_stats.dispatches >= 1
    assert stacks[1] == stacks[0]
