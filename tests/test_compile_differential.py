"""Differential acceptance for routine compilation.

The compiled back-end is only a performance change; interpreted and
fused execution must be cycle-for-cycle indistinguishable. These tests
run every DSA model at tiny scale under ``compile_mode`` off/on/verify
and compare per-cycle trace digests, then run the fig14 ci suite with
lockstep verification armed, and finally check the profiler's
conservation invariant holds on compiled runs.
"""

import pytest

from repro.core.config import COMPILE_MODE_ENV
from repro.core.messages import reset_ids
from repro.harness.suite import SUITE_CACHE_ENV, clear_cache, run_fig14_suite
from repro.sim import Tracer
from repro.workloads.graphgen import p2p_gnutella08
from repro.workloads.matrices import dense_spgemm_input
from repro.workloads.tpch import make_widx_workload


def _widx(mode):
    from dataclasses import replace

    from repro.core.config import table3_config
    from repro.dsa.widx import WidxXCacheModel

    workload = make_widx_workload(num_keys=256, num_probes=512,
                                  num_buckets=256, skew=1.3,
                                  hash_cycles=10, seed=3)
    cfg = replace(table3_config("widx", scale=0.0625), compile_mode=mode)
    return WidxXCacheModel(workload, config=cfg)


def _dasx(mode):
    from dataclasses import replace

    from repro.core.config import table3_config
    from repro.dsa.dasx import DasxXCacheModel

    workload = make_widx_workload(num_keys=256, num_probes=256,
                                  num_buckets=128, skew=1.3,
                                  hash_cycles=30, seed=4, name="dasx")
    cfg = replace(table3_config("dasx", scale=0.0625), compile_mode=mode)
    return DasxXCacheModel(workload, config=cfg)


def _sparch(mode):
    from dataclasses import replace

    from repro.core.config import table3_config
    from repro.dsa.sparch import SpArchXCacheModel

    a, b = dense_spgemm_input(n=64, nnz_per_row=4, seed=7)
    cfg = replace(table3_config("sparch", scale=0.25), compile_mode=mode)
    return SpArchXCacheModel(a, b, config=cfg)


def _gamma(mode):
    from dataclasses import replace

    from repro.core.config import table3_config
    from repro.dsa.gamma import GammaXCacheModel

    a, b = dense_spgemm_input(n=64, nnz_per_row=4, seed=7)
    cfg = replace(table3_config("gamma", scale=0.25), compile_mode=mode)
    return GammaXCacheModel(a, b, config=cfg)


def _graphpulse(mode):
    from dataclasses import replace

    from repro.dsa.graphpulse import GraphPulseXCacheModel, graphpulse_config

    graph = p2p_gnutella08(scale=0.02, seed=7)
    cfg = replace(graphpulse_config(graph.num_vertices),
                  compile_mode=mode)
    return GraphPulseXCacheModel(graph, config=cfg, num_pes=2)


_MODELS = {
    "widx": _widx,
    "dasx": _dasx,
    "sparch": _sparch,
    "gamma": _gamma,
    "graphpulse": _graphpulse,
}


def _traced_run(make, mode):
    reset_ids()
    model = make(mode)
    tracer = Tracer(capacity=2_000_000)
    model.system.controller.tracer = tracer
    result = model.run()
    return tracer.digest(), result


@pytest.mark.parametrize("dsa", sorted(_MODELS))
def test_digest_identical_off_vs_on(dsa):
    make = _MODELS[dsa]
    off_digest, off_result = _traced_run(make, "off")
    on_digest, on_result = _traced_run(make, "on")
    assert on_digest == off_digest
    assert on_result.cycles == off_result.cycles


@pytest.mark.parametrize("dsa", ["widx", "sparch"])
def test_digest_identical_under_verify(dsa):
    """Verify mode runs fused + interpreter in lockstep — same trace."""
    make = _MODELS[dsa]
    off_digest, _ = _traced_run(make, "off")
    verify_digest, _ = _traced_run(make, "verify")
    assert verify_digest == off_digest


def test_fig14_ci_suite_under_verify(monkeypatch):
    """Acceptance: the whole ci suite passes lockstep verification."""
    monkeypatch.delenv(SUITE_CACHE_ENV, raising=False)
    monkeypatch.setenv(COMPILE_MODE_ENV, "verify")
    clear_cache()                      # memoized results bypass execution
    try:
        suite = run_fig14_suite("ci")
    finally:
        clear_cache()                  # don't leak verify-mode results
    assert set(suite) == {"TPC-H-19", "TPC-H-20", "TPC-H-22", "dasx",
                          "graphpulse", "sparch", "gamma"}
    for label, variants in suite.items():
        assert variants.xcache.cycles > 0, label


def test_prof_conservation_under_compiled_execution(mini_walker,
                                                    mini_config):
    """obs.prof's attributed-cycles == lifetime invariant survives fused
    execution (satellite of the routine-compilation issue)."""
    from dataclasses import replace

    from repro.core import XCacheSystem
    from repro.obs.prof import ProfileProcessor

    stacks = {}
    for mode in ("off", "on"):
        reset_ids()
        system = XCacheSystem(
            replace(mini_config, compile_mode=mode, num_exe=4), mini_walker)
        prof = system.observe(ProfileProcessor())
        addr = system.image.alloc_u64_array(list(range(8)))
        for i in range(8):
            system.load((i,), walk_fields={"addr": addr + 8 * i})
        system.run()
        assert prof.contexts_retired == 8
        assert prof.conservation_ok, prof.mismatches
        assert prof.contexts_open == 0
        stacks[mode] = dict(prof.stacks)
    # identical attribution, not merely internally consistent
    assert stacks["on"] == stacks["off"]
