"""Smaller behaviours: messages, components, store policies, façade."""

import struct

import pytest

from repro.core import XCacheConfig, XCacheSystem
from repro.core.messages import Message
from repro.dsa.walkers import build_event_walker
from repro.sim import Component, Simulator


def bits(x):
    return struct.unpack("<Q", struct.pack("<d", x))[0]


def test_message_field_error_lists_available():
    msg = Message("MetaLoad", tag=(1,), fields={"key": 1, "table": 2})
    with pytest.raises(KeyError) as err:
        msg.get("root")
    assert "key" in str(err.value) and "table" in str(err.value)


def test_message_uids_unique():
    a = Message("E")
    b = Message("E")
    assert a.uid != b.uid


def test_component_wake_is_idempotent():
    sim = Simulator()
    ticks = []

    class Once(Component):
        def _tick(self):
            ticks.append(sim.now)
            return False

    c = Once(sim, "c")
    c.wake()
    c.wake()
    c.wake()
    sim.run()
    assert len(ticks) == 1


def test_component_reticks_while_busy():
    sim = Simulator()
    ticks = []

    class Busy(Component):
        def _tick(self):
            ticks.append(sim.now)
            return len(ticks) < 3

    Busy(sim, "b").wake()
    sim.run()
    assert ticks == [0, 1, 2]


def test_store_merge_overwrite_policy():
    config = XCacheConfig(ways=1, sets=8, data_sectors=32,
                          tag_fields=("vertex",), wlen=1)
    system = XCacheSystem(config, build_event_walker(),
                          store_merge="overwrite")
    system.store((1,), 111)
    system.run()
    system.store((1,), 222)
    system.run()
    system.load((1,), take=True)
    system.run()
    got = int.from_bytes(system.responses[-1].data[:8], "little")
    assert got == 222


def test_store_merge_policy_validated():
    with pytest.raises(ValueError):
        XCacheSystem(XCacheConfig(tag_fields=("vertex",)),
                     build_event_walker(), store_merge="xor")


def test_user_response_handler_invoked(mini_system):
    seen = []
    mini_system.on_response(lambda r: seen.append(r.request.tag))
    addr = mini_system.image.alloc_u64_array([5])
    mini_system.load((1,), walk_fields={"addr": addr})
    mini_system.run()
    assert seen == [(1,)]


def test_run_until_cuts_off(mini_system):
    addr = mini_system.image.alloc_u64_array([5])
    mini_system.load((1,), walk_fields={"addr": addr})
    responses = mini_system.run(until=2)
    assert responses == []
    assert mini_system.now == 2


def test_tag_arity_enforced_at_issue(mini_system):
    with pytest.raises(ValueError):
        mini_system.load((1, 2))


def test_summary_counts_stores():
    config = XCacheConfig(ways=1, sets=8, data_sectors=32,
                          tag_fields=("vertex",), wlen=1)
    system = XCacheSystem(config, build_event_walker())
    system.store((1,), bits(1.0))
    system.run()
    assert system.summary()["meta_stores"] == 1
