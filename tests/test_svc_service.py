"""Service end-to-end: lifecycle, dedup/coalescing, admission, cancel,
progress streaming. Worker pools are real spawned processes, so tests
share small pools and lean on the synthetic ``sleep:`` experiment."""

import threading
import time

import pytest

from repro.svc.jobs import AdmissionBusy, JobCancelled, JobSpec, JobState
from repro.svc.service import Service, sweep_specs


def _wait_state(job, state, timeout=30.0):
    deadline = time.monotonic() + timeout
    while job.state is not state:
        if time.monotonic() > deadline:
            raise TimeoutError(f"job never reached {state}: {job.status()}")
        time.sleep(0.01)


# ----------------------------------------------------------------------
# lifecycle
# ----------------------------------------------------------------------

def test_submit_running_done_lifecycle():
    with Service(workers=1, health=False) as svc:
        job = svc.submit(JobSpec(experiment="sleep:0.3"))
        assert job.state in (JobState.PENDING, JobState.RUNNING)
        _wait_state(job, JobState.RUNNING)
        payload = job.result(timeout=30)
        assert job.state is JobState.DONE
        assert payload["rendered"] == "== sleep: 0.3s =="
        assert payload["all_ok"] is True
        assert job.result_digest  # content hash of the result
        status = job.status()
        assert status["state"] == "done"
        assert status["attempts"] == 1


def test_real_experiment_through_the_service():
    from repro.harness import run_experiment

    with Service(workers=1, health=False) as svc:
        job = svc.submit(JobSpec(experiment="tab01", profile="ci"))
        payload = job.result(timeout=120)
    report = run_experiment("tab01", "ci")
    assert payload["rendered"] == report.render()
    assert payload["all_ok"] == report.all_ok


def test_unknown_experiment_rejected_at_submit():
    with Service(workers=1, health=False) as svc:
        with pytest.raises(ValueError, match="unknown experiment"):
            svc.submit(JobSpec(experiment="fig99"))
        with pytest.raises(ValueError, match="bad sleep"):
            svc.submit(JobSpec(experiment="sleep:soon"))


# ----------------------------------------------------------------------
# dedup: store hits and in-flight coalescing
# ----------------------------------------------------------------------

def test_sequential_identical_submits_hit_the_store():
    with Service(workers=1, health=False) as svc:
        first = svc.submit(JobSpec(experiment="sleep:0.1"))
        first.result(timeout=30)
        second = svc.submit(JobSpec(experiment="sleep:0.1"))
        assert second.from_store
        assert second.result(0) == first.result(0)
        stats = svc.store.stats
        assert stats.misses == 1   # exactly one simulation
        assert stats.hits == 1
        assert stats.stores == 1


def test_concurrent_identical_submits_coalesce_to_one_simulation():
    """N identical concurrent submits -> 1 simulation, N results."""
    spec = JobSpec(experiment="sleep:0.4")
    with Service(workers=2, health=False) as svc:
        jobs, errors = [], []

        def submit():
            try:
                jobs.append(svc.submit(spec))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=submit) for _ in range(5)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(jobs) == 5
        primary = jobs[0]
        assert all(job is primary for job in jobs)  # one shared Job
        payloads = [job.result(timeout=30) for job in jobs]
        assert all(p == payloads[0] for p in payloads)

        stats = svc.store.stats
        assert stats.misses == 1       # one simulation ran
        assert stats.coalesced == 4    # four submits joined it
        assert primary.followers == 4
        metrics = svc.metrics()
        assert metrics["submitted"] == 5
        assert metrics["coalesced"] == 4
        assert metrics["completed"] == 1


def test_dedup_disabled_without_a_store():
    with Service(workers=1, store=None, health=False) as svc:
        first = svc.submit(JobSpec(experiment="sleep:0.05"))
        first.result(timeout=30)
        second = svc.submit(JobSpec(experiment="sleep:0.05"))
        assert second is not first
        assert not second.from_store
        second.result(timeout=30)
        assert svc.metrics()["completed"] == 2


# ----------------------------------------------------------------------
# bounded admission
# ----------------------------------------------------------------------

def test_backpressure_returns_retry_after():
    with Service(workers=1, max_pending=1, health=False) as svc:
        running = svc.submit(JobSpec(experiment="sleep:1"))
        _wait_state(running, JobState.RUNNING)  # popped; queue is empty
        queued = svc.submit(JobSpec(experiment="sleep:1.1"))
        with pytest.raises(AdmissionBusy) as excinfo:
            svc.submit(JobSpec(experiment="sleep:1.2"))
        assert excinfo.value.retry_after > 0
        assert svc.metrics()["rejected"] == 1
        # identical concurrent work still coalesces past a full queue
        again = svc.submit(JobSpec(experiment="sleep:1.1"))
        assert again is queued


# ----------------------------------------------------------------------
# cancellation
# ----------------------------------------------------------------------

def test_cancel_pending_job():
    with Service(workers=1, health=False) as svc:
        blocker = svc.submit(JobSpec(experiment="sleep:1"))
        _wait_state(blocker, JobState.RUNNING)
        pending = svc.submit(JobSpec(experiment="sleep:2"))
        assert svc.cancel(pending)
        with pytest.raises(JobCancelled):
            pending.result(timeout=5)
        assert not svc.cancel(pending)  # already finished


def test_cancel_running_job_kills_the_worker():
    with Service(workers=1, health=False) as svc:
        job = svc.submit(JobSpec(experiment="sleep:30"))
        _wait_state(job, JobState.RUNNING)
        assert svc.cancel(job)
        with pytest.raises(JobCancelled):
            job.result(timeout=5)
        # the slot respawned and keeps serving
        after = svc.submit(JobSpec(experiment="sleep:0.05"))
        after.result(timeout=60)
        assert svc.pool.restarts == 1
        # nothing was stored for the cancelled digest
        assert not svc.store.contains(job.digest)


# ----------------------------------------------------------------------
# progress streaming
# ----------------------------------------------------------------------

def test_subscription_streams_progress_and_ends():
    with Service(workers=1, health=False) as svc:
        blocker = svc.submit(JobSpec(experiment="sleep:0.3"))
        job = svc.submit(JobSpec(experiment="fig04", profile="ci",
                                 stream_interval=50))
        sub = svc.subscribe(job)
        payloads = list(sub)  # ends when the job finishes
        job.result(timeout=120)
        blocker.result(timeout=30)
    kinds = {p.get("kind") for p in payloads}
    assert "phase" in kinds                      # start marker
    assert "event" in kinds                      # sampled bus events
    events = [p for p in payloads if p.get("kind") == "event"]
    names = {p["event"]["event"] for p in events}
    assert "run_start" in names                  # milestones always pass
    assert all(p["seq"] >= 1 for p in events)


def test_subscribe_after_finish_yields_empty_stream():
    with Service(workers=1, health=False) as svc:
        job = svc.submit(JobSpec(experiment="sleep:0.05"))
        job.result(timeout=30)
        assert list(svc.subscribe(job)) == []


# ----------------------------------------------------------------------
# sweep front-end
# ----------------------------------------------------------------------

def test_sweep_specs_cartesian_product_and_repeat():
    specs = sweep_specs("fig04", "ci",
                        grid={"widx_skew": [1.2, 1.4],
                              "seed": [7, 11]}, repeat=2)
    assert len(specs) == 8
    assert len({s.digest() for s in specs}) == 4  # repeats dedup
    overrides = {s.profile_overrides for s in specs}
    assert (("seed", 7), ("widx_skew", 1.2)) in overrides


def test_sweep_specs_rejects_unknown_fields():
    with pytest.raises(ValueError, match="unknown profile field"):
        sweep_specs("fig04", grid={"no_such_knob": [1]})


def test_sweep_runs_distinct_points_through_the_service():
    specs = sweep_specs("sleep:0.05", grid={}, repeat=3)
    assert len(specs) == 3
    with Service(workers=1, health=False) as svc:
        jobs = [svc.submit(s) for s in specs]
        for job in jobs:
            job.result(timeout=30)
        assert svc.store.stats.misses == 1  # all three deduped
