"""Tests for cache-contents observability (``repro.obs.cachelens``)."""

import io
import json

import pytest

from repro.mem import (
    AddressCache,
    CacheConfig,
    DRAMConfig,
    DRAMModel,
    MemoryImage,
)
from repro.obs.cachelens import (
    MISS_CLASSES,
    CacheLensProcessor,
    ShadowCache,
    merge_summaries,
    reuse_bucket_label,
    why_miss_report,
)
from repro.obs.events import (
    CacheAccess,
    CacheEvict,
    CacheFill,
    CacheModel,
    Hit,
    Merge,
    Miss,
)
from repro.sim import Simulator


def _conserved(entry):
    return sum(entry[c] for c in MISS_CLASSES) == entry["misses"]


# ----------------------------------------------------------------------
# shadow structures
# ----------------------------------------------------------------------
def test_shadow_sa_probe_then_touch():
    shadow = ShadowCache(ways=2, sets=1, set_fn=lambda tag: 0)
    assert shadow.access((1,)) is False     # cold
    assert shadow.access((1,)) is True      # now resident
    shadow.access((2,))
    shadow.access((3,))                     # evicts LRU (1,)
    assert shadow.access((1,)) is False     # [2,3] -> [3,1]
    assert shadow.access((2,)) is False     # (1,)'s insert evicted (2,)
    assert shadow.access((1,)) is True      # still MRU-adjacent


def test_shadow_sa_invalidate():
    shadow = ShadowCache(ways=4, sets=1, set_fn=lambda tag: 0)
    shadow.access((1,))
    shadow.invalidate((1,))
    assert shadow.access((1,)) is False
    shadow.invalidate((99,))                # absent tag is a no-op


def test_reuse_bucket_labels():
    assert reuse_bucket_label(-1) == "inf"
    assert reuse_bucket_label(0) == "0"
    assert reuse_bucket_label(1) == "1"
    assert reuse_bucket_label(3) == "4-7"


# ----------------------------------------------------------------------
# miss taxonomy on a synthetic meta-side stream
# ----------------------------------------------------------------------
def _meta_model(lens, ways=1, sets=2, component="ctl"):
    lens.handle(CacheModel(cycle=0, component=component, kind="meta",
                           ways=ways, sets=sets, tag_class="key"))


def _miss_fill(lens, tag, set_index, cycle, component="ctl"):
    lens.handle(Miss(cycle=cycle, component=component, tag=tag,
                     op="MetaLoad", set_index=set_index))
    lens.handle(CacheFill(cycle=cycle, component=component, tag=tag,
                          set_index=set_index, way=0))


def test_conflict_miss_classification():
    """1 way x 2 sets: two tags colliding in set 0 ping-pong; the
    same-capacity FA shadow still holds the loser, so the re-miss is a
    conflict — and both 2x shadows would have served it."""
    lens = CacheLensProcessor()
    _meta_model(lens, ways=1, sets=2)
    _miss_fill(lens, (0,), 0, cycle=1)                 # compulsory
    lens.handle(CacheEvict(cycle=2, component="ctl", tag=(0,),
                           set_index=0, way=0, reason="conflict"))
    _miss_fill(lens, (2,), 0, cycle=2)                 # compulsory
    lens.handle(CacheEvict(cycle=3, component="ctl", tag=(2,),
                           set_index=0, way=0, reason="conflict"))
    _miss_fill(lens, (0,), 0, cycle=3)                 # conflict

    entry = lens.summary()["ctl"]
    assert entry["misses"] == 3
    assert entry["compulsory"] == 2
    assert entry["conflict"] == 1
    assert entry["capacity"] == 0
    assert _conserved(entry)
    assert entry["would_hit_more_ways"] == 1
    assert entry["would_hit_more_sets"] == 1
    assert lens.top_conflict_sets("ctl") == [(0, 1)]


def test_capacity_miss_classification():
    """1 way x 1 set: the FA shadow has capacity 1 too, so a re-miss
    after another tag displaced it is capacity, not conflict."""
    lens = CacheLensProcessor()
    _meta_model(lens, ways=1, sets=1)
    _miss_fill(lens, (0,), 0, cycle=1)
    lens.handle(CacheEvict(cycle=2, component="ctl", tag=(0,),
                           set_index=0, way=0, reason="conflict"))
    _miss_fill(lens, (1,), 0, cycle=2)
    lens.handle(CacheEvict(cycle=3, component="ctl", tag=(1,),
                           set_index=0, way=0, reason="conflict"))
    _miss_fill(lens, (0,), 0, cycle=3)

    entry = lens.summary()["ctl"]
    assert entry["compulsory"] == 2
    assert entry["capacity"] == 1
    assert entry["conflict"] == 0
    assert _conserved(entry)


def test_dealloc_invalidates_shadows():
    """A program-intent eviction (DEALLOCM) removes the tag from every
    shadow: the re-access is a capacity miss, not a conflict one."""
    lens = CacheLensProcessor()
    _meta_model(lens, ways=2, sets=2)
    _miss_fill(lens, (0,), 0, cycle=1)
    lens.handle(CacheEvict(cycle=2, component="ctl", tag=(0,),
                           set_index=0, way=0, reason="dealloc"))
    _miss_fill(lens, (0,), 0, cycle=3)

    entry = lens.summary()["ctl"]
    assert entry["compulsory"] == 1
    assert entry["capacity"] == 1
    assert entry["conflict"] == 0
    assert entry["would_hit_more_ways"] == 0
    assert entry["would_hit_more_sets"] == 0
    assert _conserved(entry)


def test_hits_and_merges_counted_not_classified():
    lens = CacheLensProcessor()
    _meta_model(lens)
    _miss_fill(lens, (0,), 0, cycle=1)
    lens.handle(Hit(cycle=2, component="ctl", tag=(0,)))
    lens.handle(Merge(cycle=3, component="ctl", tag=(0,)))
    lens.handle(Hit(cycle=4, component="ctl", tag=(9,), status=0))

    entry = lens.summary()["ctl"]
    assert entry["hits"] == 1
    assert entry["merges"] == 1
    assert entry["nowalk"] == 1
    assert entry["misses"] == 1
    # meta hit-rate mirrors Controller.hit_rate(): merges excluded,
    # nowalk answers included
    assert entry["hit_rate"] == pytest.approx(1 / 3)


def test_geometry_arrives_late():
    """Misses before the CacheModel announce still classify (the FA
    shadow starts unbounded and trims when the capacity arrives)."""
    lens = CacheLensProcessor()
    lens.handle(Miss(cycle=1, component="ctl", tag=(0,), set_index=0))
    _meta_model(lens, ways=1, sets=1)
    lens.handle(Miss(cycle=2, component="ctl", tag=(1,), set_index=0))
    entry = lens.summary()["ctl"]
    assert entry["compulsory"] == 2 and _conserved(entry)


# ----------------------------------------------------------------------
# reuse-distance histogram + sampling knob
# ----------------------------------------------------------------------
def _cyclic_stream(lens, tags=4, rounds=8):
    _meta_model(lens, ways=4, sets=1)
    cycle = 0
    for _ in range(rounds):
        for t in range(tags):
            cycle += 1
            lens.handle(Hit(cycle=cycle, component="ctl", tag=(t,)))


def test_reuse_distance_exact():
    lens = CacheLensProcessor(reuse_sample=1)
    _cyclic_stream(lens, tags=4, rounds=8)
    hist = lens.summary()["ctl"]["reuse"]
    # cyclic over 4 tags: 4 cold (inf), the rest at stack distance 3
    assert hist["inf"] == 4
    assert hist["2-3"] == 28
    assert sum(hist.values()) == 32


def test_reuse_sampling_bounds_mass():
    exact = CacheLensProcessor(reuse_sample=1)
    sampled = CacheLensProcessor(reuse_sample=4)
    _cyclic_stream(exact)
    _cyclic_stream(sampled)
    exact_entry = exact.summary()["ctl"]
    sampled_entry = sampled.summary()["ctl"]
    assert sum(sampled_entry["reuse"].values()) == 8   # every 4th of 32
    # sampling touches only the histogram — counters are untouched
    for key in ("accesses", "hits", "misses"):
        assert sampled_entry[key] == exact_entry[key]


def test_reuse_sample_validation():
    with pytest.raises(ValueError):
        CacheLensProcessor(reuse_sample=0)
    with pytest.raises(ValueError):
        CacheLensProcessor(heatmap_window=0)


# ----------------------------------------------------------------------
# heatmap windows
# ----------------------------------------------------------------------
def test_heatmap_rows_window_and_gap_behaviour():
    lens = CacheLensProcessor(heatmap_window=10)
    _meta_model(lens, ways=2, sets=4)
    lens.handle(CacheFill(cycle=1, component="ctl", tag=(0,),
                          set_index=0, way=0))
    lens.handle(CacheFill(cycle=2, component="ctl", tag=(1,),
                          set_index=1, way=0))
    lens.handle(CacheEvict(cycle=25, component="ctl", tag=(0,),
                           set_index=0, way=0, reason="conflict"))
    rows = lens.heat_rows()
    assert all(name == "ctl" for name, _ in rows)
    first = [r for _, r in rows if r["window_start"] == 0]
    assert {r["set"]: r["fills"] for r in first} == {0: 1, 1: 1}
    last = [r for _, r in rows if r["window_start"] == 20]
    evicted = next(r for r in last if r["set"] == 0)
    assert evicted["evicts"] == 1 and evicted["occupancy"] == 0
    # set 1 still occupied in the final window
    held = next(r for r in last if r["set"] == 1)
    assert held["occupancy"] == 1 and held["fills"] == 0


def test_write_heatmap_csv():
    from repro.obs.timeseries import HEATMAP_COLUMNS, write_heatmap_csv

    lens = CacheLensProcessor(heatmap_window=10)
    _meta_model(lens, ways=1, sets=2)
    lens.handle(CacheFill(cycle=3, component="ctl", tag=(0,),
                          set_index=0, way=0))
    out = io.StringIO()
    rows = write_heatmap_csv(out, [(0, lens.heat_rows())])
    lines = out.getvalue().strip().splitlines()
    assert lines[0] == "run,cache," + ",".join(HEATMAP_COLUMNS)
    assert rows == len(lines) - 1 == 1
    assert lines[1] == "0,ctl,0,10,0,1,1,0"


# ----------------------------------------------------------------------
# the address-cache stream (real AddressCache publishing)
# ----------------------------------------------------------------------
def _addr_cache(**kw):
    sim = Simulator()
    dram = DRAMModel(sim, MemoryImage(), DRAMConfig())
    cache = AddressCache(sim, dram, CacheConfig(**kw))
    lens = CacheLensProcessor()
    cache.ensure_bus().attach(lens)
    return sim, cache, lens


def test_addr_cache_lens_mirrors_stats():
    sim, cache, lens = _addr_cache(ways=1, sets=2, block_bytes=64)
    def access(addr, is_write=False):
        cache.access(addr, is_write, lambda lat: None)
        sim.run()

    access(0)          # compulsory miss
    access(0)          # hit
    access(128)        # compulsory miss, same set, evicts block 0
    access(0)          # conflict miss (FA capacity 2 still holds it)
    entry = lens.summary()[cache.name]
    assert entry["kind"] == "addr"
    assert entry["misses"] == 3
    assert entry["compulsory"] == 2
    assert entry["conflict"] == 1
    assert _conserved(entry)
    assert entry["would_hit_more_sets"] == 1   # 1w x 4s separates them
    assert entry["would_hit_more_ways"] == 1
    assert entry["hits"] == 1
    # addr hit-rate mirrors AddressCache.hit_rate() exactly
    assert entry["hit_rate"] == pytest.approx(cache.hit_rate())


def test_addr_cache_mshr_merges_and_stalls_counted():
    sim, cache, lens = _addr_cache(mshr_entries=1)
    done = []
    cache.access(0x1000, False, lambda lat: done.append(lat))
    cache.access(0x1008, False, lambda lat: done.append(lat))  # merge
    cache.access(0x2000, False, lambda lat: done.append(lat))  # MSHR full
    sim.run()
    entry = lens.summary()[cache.name]
    assert entry["merges"] == 1
    assert entry["stalls"] >= 1
    # conservation counts only primary misses, never merges/stalls
    assert _conserved(entry)
    assert entry["hit_rate"] == pytest.approx(cache.hit_rate())


# ----------------------------------------------------------------------
# merge / report plumbing
# ----------------------------------------------------------------------
def _small_summary(misses, conflict, hits=10):
    return {
        "ctl": {
            "kind": "meta", "tag_class": "key",
            "accesses": hits + misses, "hits": hits, "misses": misses,
            "merges": 0, "nowalk": 0, "stalls": 0,
            "compulsory": misses - conflict, "capacity": 0,
            "conflict": conflict, "would_hit_more_ways": conflict,
            "would_hit_more_sets": 0, "hit_rate": 0.0,
            "conflict_share": 0.0, "reuse": {"0": misses},
        },
    }


def test_merge_summaries_order_independent():
    a, b = _small_summary(4, 1), _small_summary(6, 3)
    ab, ba = merge_summaries([a, b]), merge_summaries([b, a])
    assert ab == ba
    entry = ab["ctl"]
    assert entry["misses"] == 10
    assert entry["conflict"] == 4
    assert entry["conflict_share"] == pytest.approx(0.4)
    assert entry["hit_rate"] == pytest.approx(20 / 30)
    assert entry["reuse"] == {"0": 10}
    assert _conserved(entry)


def test_why_miss_report_renders_and_conserves():
    text = why_miss_report(_small_summary(4, 1), {"ctl": {3: 1}})
    assert "conservation=ok" in text
    assert "compulsory" in text and "+ways" in text
    assert "hottest conflict sets: set3=1" in text
    assert "reuse[key]" in text


def test_why_miss_table_empty_and_shares():
    from repro.harness.report import why_miss_table

    assert why_miss_table({}) == ""
    table = why_miss_table(_small_summary(4, 1))
    assert "75.0%" in table      # compulsory share
    assert "25.0%" in table      # conflict share


# ----------------------------------------------------------------------
# capture / harness integration
# ----------------------------------------------------------------------
def test_capture_spec_misses_activation_and_scoping(tmp_path):
    from repro.obs.capture import CaptureSpec

    assert not CaptureSpec().active
    assert CaptureSpec(misses=True).active
    heat = str(tmp_path / "h.csv")
    spec = CaptureSpec(heatmap_path=heat)
    assert spec.active and spec.wants_misses
    scoped = spec.for_experiment("fig04")
    assert scoped.heatmap_path.endswith("h.fig04.csv")
    assert scoped.output_paths()["heatmap"] == scoped.heatmap_path


def test_system_observe_cachelens(mini_system):
    lens = mini_system.observe_cachelens()
    addr = mini_system.image.alloc_u64_array([i + 100 for i in range(8)])
    for i in range(8):
        mini_system.load((i,), walk_fields={"addr": addr + 8 * i})
    mini_system.run()
    for i in range(8):
        mini_system.load((i,), walk_fields={"addr": addr + 8 * i})
    mini_system.run()

    entry = lens.summary()[mini_system.controller.name]
    stats = mini_system.controller.stats
    assert entry["misses"] == stats.get("misses") == 8
    assert _conserved(entry)
    assert entry["hit_rate"] == pytest.approx(
        mini_system.controller.hit_rate())


def test_fig14_ci_miss_taxonomy_conservation():
    """Acceptance: compulsory + capacity + conflict == misses for every
    cache across the whole memoized ci suite, and the lens hit-rate
    stays a probability."""
    from repro.harness.suite import clear_cache, run_fig14_suite
    from repro.obs.capture import CaptureSpec, capture_scope

    clear_cache()  # a memoized reload would publish no events
    try:
        with capture_scope(CaptureSpec(misses=True)) as cap:
            run_fig14_suite("ci")
            summary = cap.merged_cachelens()
    finally:
        clear_cache()  # don't leak captured results into other tests

    assert len(summary) >= 4
    assert sum(e["misses"] for e in summary.values()) > 100
    for name, entry in summary.items():
        assert _conserved(entry), name
        assert 0.0 < entry["hit_rate"] <= 1.0, name
        # a classified would-hit counter can never exceed the misses
        assert entry["would_hit_more_ways"] <= entry["misses"]
        assert entry["would_hit_more_sets"] <= entry["misses"]


def test_replay_misses_matches_live(tmp_path):
    """explain --misses over a JSONL capture reproduces the live lens."""
    from repro.harness.parallel import execute_one
    from repro.harness.suite import clear_cache
    from repro.obs.capture import CaptureSpec
    from repro.obs.explain import replay_misses

    events = str(tmp_path / "ev.jsonl")
    clear_cache()
    try:
        telemetry = {}
        execute_one("fig04", "ci",
                    CaptureSpec(events_path=events, misses=True),
                    telemetry=telemetry)
    finally:
        clear_cache()
    live = telemetry["cachelens"]
    replayed, conflicts = replay_misses(str(tmp_path / "ev.fig04.jsonl"))
    assert replayed == live
    assert isinstance(conflicts, dict)


def test_perfetto_cache_counter_tracks():
    from repro.obs.export import PerfettoExporter

    exporter = PerfettoExporter(io.StringIO())
    exporter.handle(CacheFill(cycle=1, component="ctl", tag=(0,),
                              set_index=0, way=0))
    exporter.handle(CacheEvict(cycle=5, component="ctl", tag=(0,),
                               set_index=0, way=0, reason="conflict"))
    counters = [e for e in exporter.trace_events if e.get("ph") == "C"]
    assert [c["args"]["entries"] for c in counters] == [1, 0]
    assert counters[-1]["args"]["evictions"] == 1


def test_slo_gate_budgets_cache_health():
    from repro.obs.regress import check_slo

    summary = {"suite": "s", "components": {
        "dsa": {"requests": 100, "latency_p50": 5, "latency_p99": 50,
                "hit_rate": 0.6, "conflict_share": 0.2}}}
    policy = {"suites": {"s": {"min_hit_rate": 0.7,
                               "max_conflict_share": 0.1}}}
    checks = {c.metric: c for c in check_slo(summary, policy)}
    assert not checks["dsa.hit_rate"].ok
    assert not checks["dsa.conflict_share"].ok
    policy = {"suites": {"s": {"min_hit_rate": 0.5,
                               "max_conflict_share": 0.25}}}
    assert all(c.ok for c in check_slo(summary, policy))


def test_event_json_round_trip_cache_events():
    """Satellite: the new cache events survive the JSONL wire format."""
    from repro.obs.events import event_from_json
    from repro.obs.export import event_to_dict

    originals = [
        CacheModel(cycle=1, component="c", kind="addr", ways=2, sets=8,
                   block_bytes=64, tag_class="addr"),
        CacheFill(cycle=2, component="c", tag=(3, 4), set_index=1,
                  way=0),
        CacheEvict(cycle=3, component="c", tag=(5,), set_index=2,
                   way=1, reason="dealloc"),
        CacheAccess(cycle=4, component="c", tag=(4096,), set_index=3,
                    outcome="mshr_stall", is_write=True),
        Miss(cycle=5, component="c", tag=(6,), set_index=9),
    ]
    for original in originals:
        wire = json.loads(json.dumps(event_to_dict(original)))
        rebuilt = event_from_json(wire)
        assert rebuilt == original
        assert type(rebuilt) is type(original)
