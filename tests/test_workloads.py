"""Tests for workload generators (determinism + shape)."""

import pytest

from repro.workloads import (
    ZipfSampler,
    banded_sparse,
    dense_spgemm_input,
    gnutella_spgemm_input,
    graph_adjacency,
    make_widx_workload,
    p2p_gnutella08,
    powerlaw_graph,
    random_sparse,
    tpch_query_workload,
    zipf_trace,
    TPCH_QUERIES,
)


def test_zipf_deterministic():
    s1 = ZipfSampler(100, 1.0, seed=5).trace(50)
    s2 = ZipfSampler(100, 1.0, seed=5).trace(50)
    assert s1 == s2


def test_zipf_skew_concentrates_mass():
    flat = ZipfSampler(100, 0.0, seed=1).trace(2000)
    skewed = ZipfSampler(100, 1.5, seed=1).trace(2000)
    assert skewed.count(0) > flat.count(0) * 3


def test_zipf_validation():
    with pytest.raises(ValueError):
        ZipfSampler(0)
    with pytest.raises(ValueError):
        ZipfSampler(10, -1.0)


def test_zipf_trace_over_items():
    trace = zipf_trace(["a", "b", "c"], 100, seed=2)
    assert len(trace) == 100
    assert set(trace) <= {"a", "b", "c"}


def test_widx_workload_shape():
    wl = make_widx_workload(num_keys=128, num_probes=256, num_buckets=64,
                            seed=1)
    assert len(wl.pairs) == 128
    assert len(wl.probes) == 256
    assert len({k for k, _ in wl.pairs}) == 128  # unique keys


def test_widx_workload_deterministic():
    w1 = make_widx_workload(num_keys=64, num_probes=64, num_buckets=64,
                            seed=9)
    w2 = make_widx_workload(num_keys=64, num_probes=64, num_buckets=64,
                            seed=9)
    assert w1.probes == w2.probes
    assert w1.pairs == w2.pairs


def test_widx_workload_miss_fraction():
    wl = make_widx_workload(num_keys=128, num_probes=400, num_buckets=128,
                            miss_fraction=0.25, seed=3)
    present = {k for k, _ in wl.pairs}
    missing = sum(1 for p in wl.probes if p not in present)
    assert missing == 100


def test_widx_workload_validation():
    with pytest.raises(ValueError):
        make_widx_workload(num_buckets=100)
    with pytest.raises(ValueError):
        make_widx_workload(miss_fraction=2.0)


def test_tpch_query_knobs():
    assert set(TPCH_QUERIES) == {"TPC-H-19", "TPC-H-20", "TPC-H-22"}
    wl19 = tpch_query_workload("TPC-H-19", num_keys=128, num_probes=128)
    wl22 = tpch_query_workload("TPC-H-22", num_keys=128, num_probes=128)
    assert wl19.hash_cycles > wl22.hash_cycles  # string vs numeric keys
    with pytest.raises(KeyError):
        tpch_query_workload("TPC-H-1")


def test_powerlaw_graph_shape():
    g = powerlaw_graph(200, 800, seed=4)
    assert g.num_vertices == 200
    assert g.num_edges <= 800
    assert g.num_edges >= 700  # close to target


def test_powerlaw_graph_no_dangling():
    g = powerlaw_graph(300, 900, seed=7)
    for v in range(g.num_vertices):
        assert g.out_degree(v) >= 1


def test_powerlaw_graph_heavy_tail():
    g = powerlaw_graph(500, 2500, seed=5)
    in_deg = [0] * g.num_vertices
    for v in range(g.num_vertices):
        for u in g.out_neighbors(v):
            in_deg[u] += 1
    assert max(in_deg) > 10 * (sum(in_deg) / len(in_deg))


def test_graph_presets_scale():
    g = p2p_gnutella08(scale=0.02)
    assert 100 <= g.num_vertices <= 200


def test_random_sparse_exact_nnz():
    m = random_sparse(16, 16, 40, seed=1)
    assert m.nnz == 40
    with pytest.raises(ValueError):
        random_sparse(2, 2, 5)


def test_banded_sparse_band_structure():
    m = banded_sparse(8, band=1)
    for r in range(8):
        cols, _ = m.row(r)
        for c in cols:
            assert abs(c - r) <= 1


def test_graph_adjacency_matches_graph():
    g = powerlaw_graph(50, 150, seed=2)
    m = graph_adjacency(g)
    assert m.nnz == g.num_edges
    assert m.rows == g.num_vertices


def test_gnutella_spgemm_input_square():
    a, b = gnutella_spgemm_input(scale=0.002)
    assert a.rows == a.cols == b.rows == b.cols


def test_dense_spgemm_input_density_and_determinism():
    a1, b1 = dense_spgemm_input(n=64, nnz_per_row=4, seed=3)
    a2, _b2 = dense_spgemm_input(n=64, nnz_per_row=4, seed=3)
    assert a1.nnz == 64 * 4
    assert b1.nnz == 64 * 4
    assert a1.to_dict() == a2.to_dict()


def test_dense_spgemm_column_skew():
    a, _b = dense_spgemm_input(n=128, nnz_per_row=8, skew=1.0, seed=1)
    col_counts = {}
    for c in a.indices:
        col_counts[c] = col_counts.get(c, 0) + 1
    top = max(col_counts.values())
    assert top > 5 * (a.nnz / a.cols)
