"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import SimulationError, Simulator


def test_starts_at_cycle_zero():
    assert Simulator().now == 0


def test_call_at_runs_at_cycle():
    sim = Simulator()
    seen = []
    sim.call_at(10, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [10]


def test_call_after_relative():
    sim = Simulator()
    seen = []
    sim.call_at(5, lambda: sim.call_after(7, lambda: seen.append(sim.now)))
    sim.run()
    assert seen == [12]


def test_same_cycle_fifo_order():
    sim = Simulator()
    seen = []
    for i in range(5):
        sim.call_at(3, lambda i=i: seen.append(i))
    sim.run()
    assert seen == [0, 1, 2, 3, 4]


def test_events_ordered_across_cycles():
    sim = Simulator()
    seen = []
    sim.call_at(9, lambda: seen.append(9))
    sim.call_at(2, lambda: seen.append(2))
    sim.call_at(5, lambda: seen.append(5))
    sim.run()
    assert seen == [2, 5, 9]


def test_run_returns_final_cycle():
    sim = Simulator()
    sim.call_at(42, lambda: None)
    assert sim.run() == 42


def test_run_until_stops_before_later_events():
    sim = Simulator()
    seen = []
    sim.call_at(10, lambda: seen.append(10))
    sim.call_at(100, lambda: seen.append(100))
    sim.run(until=50)
    assert seen == [10]
    assert sim.now == 50
    assert sim.pending == 1


def test_run_resumes_after_until():
    sim = Simulator()
    seen = []
    sim.call_at(100, lambda: seen.append(100))
    sim.run(until=50)
    sim.run()
    assert seen == [100]


def test_scheduling_in_past_rejected():
    sim = Simulator()
    sim.call_at(10, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.call_at(5, lambda: None)


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Simulator().call_after(-1, lambda: None)


def test_stop_halts_run():
    sim = Simulator()
    seen = []

    def first():
        seen.append("first")
        sim.stop()

    sim.call_at(1, first)
    sim.call_at(2, lambda: seen.append("second"))
    sim.run()
    assert seen == ["first"]
    assert sim.pending == 1


def test_step_runs_one_cycle():
    sim = Simulator()
    seen = []
    sim.call_at(1, lambda: seen.append("a"))
    sim.call_at(1, lambda: seen.append("b"))
    sim.call_at(2, lambda: seen.append("c"))
    assert sim.step()
    assert seen == ["a", "b"]
    assert sim.step()
    assert seen == ["a", "b", "c"]
    assert not sim.step()


def test_max_events_guards_livelock():
    sim = Simulator()

    def respawn():
        sim.call_after(1, respawn)

    sim.call_at(0, respawn)
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    seen = []

    def chain(n):
        seen.append(n)
        if n < 4:
            sim.call_after(2, lambda: chain(n + 1))

    sim.call_at(0, chain.__get__(0) if False else (lambda: chain(0)))
    sim.run()
    assert seen == [0, 1, 2, 3, 4]
    assert sim.now == 8


def test_reentrant_run_rejected():
    sim = Simulator()

    def nested():
        sim.run()

    sim.call_at(0, nested)
    with pytest.raises(SimulationError):
        sim.run()


def test_zero_delay_runs_same_cycle():
    sim = Simulator()
    seen = []
    sim.call_at(5, lambda: sim.call_after(0, lambda: seen.append(sim.now)))
    sim.run()
    assert seen == [5]
