"""Unit tests for the discrete-event simulation kernel.

Every semantic test runs against both kernels — the bucketed production
``Simulator`` and the reference ``HeapSimulator`` it replaced — so the
two stay behaviourally interchangeable (the golden-trace suite depends
on that).
"""

import random

import pytest

from repro.sim import (
    KERNELS,
    HeapSimulator,
    SimulationError,
    Simulator,
    default_kernel,
    new_simulator,
    use_kernel,
)


@pytest.fixture(params=sorted(KERNELS), ids=sorted(KERNELS))
def make_sim(request):
    return KERNELS[request.param]


def test_starts_at_cycle_zero(make_sim):
    assert make_sim().now == 0


def test_call_at_runs_at_cycle(make_sim):
    sim = make_sim()
    seen = []
    sim.call_at(10, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [10]


def test_call_after_relative(make_sim):
    sim = make_sim()
    seen = []
    sim.call_at(5, lambda: sim.call_after(7, lambda: seen.append(sim.now)))
    sim.run()
    assert seen == [12]


def test_same_cycle_fifo_order(make_sim):
    sim = make_sim()
    seen = []
    for i in range(5):
        sim.call_at(3, lambda i=i: seen.append(i))
    sim.run()
    assert seen == [0, 1, 2, 3, 4]


def test_events_ordered_across_cycles(make_sim):
    sim = make_sim()
    seen = []
    sim.call_at(9, lambda: seen.append(9))
    sim.call_at(2, lambda: seen.append(2))
    sim.call_at(5, lambda: seen.append(5))
    sim.run()
    assert seen == [2, 5, 9]


def test_run_returns_final_cycle(make_sim):
    sim = make_sim()
    sim.call_at(42, lambda: None)
    assert sim.run() == 42


def test_run_until_stops_before_later_events(make_sim):
    sim = make_sim()
    seen = []
    sim.call_at(10, lambda: seen.append(10))
    sim.call_at(100, lambda: seen.append(100))
    sim.run(until=50)
    assert seen == [10]
    assert sim.now == 50
    assert sim.pending == 1


def test_run_resumes_after_until(make_sim):
    sim = make_sim()
    seen = []
    sim.call_at(100, lambda: seen.append(100))
    sim.run(until=50)
    sim.run()
    assert seen == [100]


def test_scheduling_in_past_rejected(make_sim):
    sim = make_sim()
    sim.call_at(10, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.call_at(5, lambda: None)


def test_negative_delay_rejected(make_sim):
    with pytest.raises(SimulationError):
        make_sim().call_after(-1, lambda: None)


def test_stop_halts_run(make_sim):
    sim = make_sim()
    seen = []

    def first():
        seen.append("first")
        sim.stop()

    sim.call_at(1, first)
    sim.call_at(2, lambda: seen.append("second"))
    sim.run()
    assert seen == ["first"]
    assert sim.pending == 1


def test_step_runs_one_cycle(make_sim):
    sim = make_sim()
    seen = []
    sim.call_at(1, lambda: seen.append("a"))
    sim.call_at(1, lambda: seen.append("b"))
    sim.call_at(2, lambda: seen.append("c"))
    assert sim.step()
    assert seen == ["a", "b"]
    assert sim.step()
    assert seen == ["a", "b", "c"]
    assert not sim.step()


def test_max_events_guards_livelock(make_sim):
    sim = make_sim()

    def respawn():
        sim.call_after(1, respawn)

    sim.call_at(0, respawn)
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_max_events_counts_callbacks_not_cycles(make_sim):
    # 10 callbacks spread over 1000 cycles: a cycle-based cap of 100
    # would trip, a callback-based one must not.
    sim = make_sim()
    seen = []
    for i in range(10):
        sim.call_at(i * 100, lambda i=i: seen.append(i))
    sim.run(max_events=100)
    assert len(seen) == 10


def test_events_executed_accumulates(make_sim):
    sim = make_sim()
    for i in range(7):
        sim.call_at(i, lambda: None)
    assert sim.events_executed == 0
    sim.run(until=2)
    assert sim.events_executed == 3
    sim.run()
    assert sim.events_executed == 7


def test_events_scheduled_during_run_execute(make_sim):
    sim = make_sim()
    seen = []

    def chain(n):
        seen.append(n)
        if n < 4:
            sim.call_after(2, lambda: chain(n + 1))

    sim.call_at(0, lambda: chain(0))
    sim.run()
    assert seen == [0, 1, 2, 3, 4]
    assert sim.now == 8


def test_reentrant_run_rejected(make_sim):
    sim = make_sim()

    def nested():
        sim.run()

    sim.call_at(0, nested)
    with pytest.raises(SimulationError):
        sim.run()


def test_zero_delay_runs_same_cycle(make_sim):
    sim = make_sim()
    seen = []
    sim.call_at(5, lambda: sim.call_after(0, lambda: seen.append(sim.now)))
    sim.run()
    assert seen == [5]


# ----------------------------------------------------------------------
# bucketed-kernel specifics: ring/heap boundary and idle fast-forward
# ----------------------------------------------------------------------

def test_far_future_events_beyond_horizon():
    sim = Simulator(horizon=16)
    seen = []
    for cycle in (3, 15, 16, 17, 1000, 100_000):
        sim.call_at(cycle, lambda c=cycle: seen.append((c, sim.now)))
    sim.run()
    assert seen == [(c, c) for c in (3, 15, 16, 17, 1000, 100_000)]
    assert sim.now == 100_000


def test_heap_then_ring_same_cycle_fifo():
    # An event scheduled while cycle 40 is beyond the horizon (heap) must
    # still run before one scheduled later, from nearby (ring) — global
    # FIFO within a cycle spans both stores.
    sim = Simulator(horizon=16)
    seen = []
    sim.call_at(40, lambda: seen.append("far-first"))     # heap
    sim.call_at(39, lambda: sim.call_after(1, lambda: seen.append("near-second")))  # ring @40
    sim.run()
    assert seen == ["far-first", "near-second"]


def test_idle_fast_forward_skips_empty_cycles():
    sim = Simulator(horizon=8)
    seen = []
    sim.call_at(0, lambda: sim.call_after(1_000_000,
                                          lambda: seen.append(sim.now)))
    sim.run()
    assert seen == [1_000_000]
    assert sim.events_executed == 2


def test_horizon_rounds_to_power_of_two():
    assert Simulator(horizon=100)._horizon == 128
    assert Simulator(horizon=128)._horizon == 128
    with pytest.raises(SimulationError):
        Simulator(horizon=0)


def test_fuzz_execution_order_matches_heap_kernel():
    # Random schedule shapes, including re-scheduling from inside
    # callbacks: both kernels must execute the exact same sequence.
    for seed in range(5):
        logs = {}
        for name, cls in (("bucket", Simulator), ("heap", HeapSimulator)):
            rng = random.Random(seed)
            sim = cls() if name == "heap" else cls(horizon=32)
            log = logs.setdefault(name, [])

            def make_event(eid, depth, sim=sim, rng=rng, log=log):
                def event():
                    log.append((eid, sim.now))
                    if depth < 2:
                        for _ in range(rng.randrange(3)):
                            sim.call_after(
                                rng.randrange(0, 100),
                                make_event(rng.randrange(10_000), depth + 1),
                            )
                return event

            for i in range(50):
                sim.call_at(rng.randrange(0, 200), make_event(i, 0))
            sim.run()
        assert logs["bucket"] == logs["heap"], f"diverged at seed {seed}"


# ----------------------------------------------------------------------
# kernel selection
# ----------------------------------------------------------------------

def test_default_kernel_is_bucket():
    assert default_kernel() == "bucket"
    assert isinstance(new_simulator(), Simulator)


def test_use_kernel_scopes_selection():
    with use_kernel("heap"):
        assert default_kernel() == "heap"
        assert isinstance(new_simulator(), HeapSimulator)
    assert default_kernel() == "bucket"


def test_unknown_kernel_rejected():
    with pytest.raises(KeyError):
        with use_kernel("fifo"):
            pass
